// Fault injection through the PFCI_FAILPOINT sites compiled into every
// miner's early-exit checkpoints. Each test arms a site with a callback
// that triggers a fail-soft stop (cancel token, expired deadline) and
// asserts the run winds down through the intended path: a non-complete
// Outcome, no crash, and only verified entries in the partial result.
#include "src/util/failpoint.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/mine.h"
#include "src/exact/charm_miner.h"
#include "src/exact/closed_miner.h"
#include "src/harness/dataset_factory.h"
#include "src/util/runtime.h"

namespace pfci {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::CompiledIn()) {
      GTEST_SKIP() << "failpoints compiled out (PFCI_FAILPOINTS=off)";
    }
  }

  void TearDown() override { failpoint::DisarmAll(); }
};

TEST_F(FailpointTest, RegistrySemantics) {
  EXPECT_EQ(failpoint::HitCount("x"), 0u);
  int fired = 0;
  failpoint::Arm("x", [&fired] { ++fired; });
  failpoint::Hit("x");
  failpoint::Hit("x");
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(failpoint::HitCount("x"), 2u);
  failpoint::Hit("y");  // Unarmed site: no effect.
  EXPECT_EQ(failpoint::HitCount("y"), 0u);
  failpoint::Arm("x");  // Re-arm as counting probe: count resets.
  EXPECT_EQ(failpoint::HitCount("x"), 0u);
  failpoint::Hit("x");
  EXPECT_EQ(fired, 2) << "re-arming replaced the action";
  failpoint::Disarm("x");
  failpoint::Hit("x");
  EXPECT_EQ(failpoint::HitCount("x"), 0u);
}

/// Every entry of a partial result must appear in the full run with
/// bit-identical values — the "verified partial" contract.
void ExpectVerifiedPrefix(const MiningResult& partial,
                          const MiningResult& full) {
  for (const PfciEntry& entry : partial.itemsets) {
    const PfciEntry* reference = full.Find(entry.items);
    ASSERT_NE(reference, nullptr)
        << entry.items.ToString() << " not in the unbudgeted run";
    EXPECT_EQ(entry.fcp, reference->fcp) << entry.items.ToString();
    EXPECT_EQ(entry.pr_f, reference->pr_f) << entry.items.ToString();
  }
}

MiningRequest PaperRequest(Algorithm algorithm) {
  MiningRequest request;
  request.algorithm = algorithm;
  request.params.min_sup = 2;
  request.params.pfct = 0.1;
  if (algorithm == Algorithm::kExpectedSupport) request.min_esup = 1.0;
  if (algorithm == Algorithm::kTopK) request.top_k = 5;
  return request;
}

/// Arms `site` to trip a CancelToken mid-run and checks the miner winds
/// down with Outcome::kCancelled and a verified partial.
void ExpectCancellationAtSite(const char* site, Algorithm algorithm,
                              bool force_sampling = false) {
  SCOPED_TRACE(site);
  const UncertainDatabase db = MakePaperExampleDb();
  MiningRequest request = PaperRequest(algorithm);
  if (force_sampling) {
    request.params.force_sampling = true;
    request.params.exact_event_limit = 0;
    request.params.pruning.fcp_bounds = false;
    request.params.epsilon = 0.5;
    request.params.delta = 0.3;
  }
  const MiningResult full = Mine(db, request);
  ASSERT_EQ(full.outcome(), Outcome::kComplete);

  CancelToken token;
  failpoint::Arm(site, [&token] { token.RequestCancel(); });
  request.cancel = &token;
  const MiningResult partial = Mine(db, request);
  failpoint::Disarm(site);

  EXPECT_GE(failpoint::HitCount(site), 0u);  // Disarmed: count is gone.
  EXPECT_EQ(partial.outcome(), Outcome::kCancelled);
  EXPECT_FALSE(partial.ok());
  EXPECT_TRUE(partial.stats.truncated);
  EXPECT_FALSE(partial.status_message.empty());
  ExpectVerifiedPrefix(partial, full);
}

TEST_F(FailpointTest, MpfciCancelsAtNodeExpansion) {
  ExpectCancellationAtSite("mpfci/node", Algorithm::kMpfci);
}

TEST_F(FailpointTest, MpfciCancelsAtSampleBatch) {
  ExpectCancellationAtSite("sampler/batch", Algorithm::kMpfci,
                           /*force_sampling=*/true);
}

TEST_F(FailpointTest, BfsCancelsAtLevelBoundary) {
  ExpectCancellationAtSite("bfs/level", Algorithm::kMpfciBfs);
}

TEST_F(FailpointTest, NaiveCancelsAtClosednessCheck) {
  ExpectCancellationAtSite("naive/check", Algorithm::kNaive);
}

TEST_F(FailpointTest, TopKCancelsAtNodeExpansion) {
  ExpectCancellationAtSite("topk/node", Algorithm::kTopK);
}

TEST_F(FailpointTest, PfiCancelsAtNodeExpansion) {
  ExpectCancellationAtSite("pfi/node", Algorithm::kPfi);
}

TEST_F(FailpointTest, ExpectedSupportCancelsAtNodeExpansion) {
  ExpectCancellationAtSite("esup/node", Algorithm::kExpectedSupport);
}

TEST_F(FailpointTest, DeadlineInjectedAtNodeExpansion) {
  // The armed action burns past the (tiny) deadline, so the very next
  // checkpoint reports kDeadlineExceeded.
  const UncertainDatabase db = MakePaperExampleDb();
  MiningRequest request = PaperRequest(Algorithm::kMpfci);
  request.budget.deadline_seconds = 1e-3;
  failpoint::Arm("mpfci/node", [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  });
  const MiningResult result = Mine(db, request);
  EXPECT_EQ(result.outcome(), Outcome::kDeadlineExceeded);
  EXPECT_FALSE(result.ok());
}

TEST_F(FailpointTest, ClosedOracleCancelsAtNode) {
  TransactionDatabase db;
  db.Add(Itemset{0, 1, 2});
  db.Add(Itemset{0, 1});
  db.Add(Itemset{1, 2});
  db.Add(Itemset{0, 2});
  const std::vector<SupportedItemset> full = MineClosedItemsets(db, 1);
  ASSERT_FALSE(full.empty());

  CancelToken token;
  RunController controller(RunBudget{}, &token);
  failpoint::Arm("closed/node", [&token] { token.RequestCancel(); });
  std::vector<SupportedItemset> partial;
  MineClosedItemsetsInto(
      db, 1,
      [&partial](const Itemset& items, std::size_t support) {
        partial.push_back(SupportedItemset{items, support});
      },
      nullptr, &controller);
  EXPECT_EQ(controller.outcome(), Outcome::kCancelled);
  EXPECT_LT(partial.size(), full.size());
  for (const SupportedItemset& entry : partial) {
    EXPECT_NE(std::find(full.begin(), full.end(), entry), full.end())
        << entry.items.ToString();
  }
}

TEST_F(FailpointTest, CharmCancelsAtNode) {
  TransactionDatabase db;
  db.Add(Itemset{0, 1, 2});
  db.Add(Itemset{0, 1});
  db.Add(Itemset{1, 2});
  db.Add(Itemset{0, 2});
  const std::vector<SupportedItemset> full = CharmMineClosedItemsets(db, 1);
  ASSERT_FALSE(full.empty());

  CancelToken token;
  RunController controller(RunBudget{}, &token);
  failpoint::Arm("charm/node", [&token] { token.RequestCancel(); });
  const std::vector<SupportedItemset> partial =
      CharmMineClosedItemsets(db, 1, nullptr, &controller);
  EXPECT_EQ(controller.outcome(), Outcome::kCancelled);
  EXPECT_LT(partial.size(), full.size());
  // No insertion happens after the stop, so every returned set is
  // genuinely closed: it must appear in the full run.
  for (const SupportedItemset& entry : partial) {
    EXPECT_NE(std::find(full.begin(), full.end(), entry), full.end())
        << entry.items.ToString();
  }
}

TEST_F(FailpointTest, BruteForceCancelsAtWorldRange) {
  const UncertainDatabase db = MakePaperExampleDb();
  const std::vector<FcpGroundTruth> full = BruteForceAllFcp(db, 2);
  ASSERT_FALSE(full.empty());

  CancelToken token;
  RunController controller(RunBudget{}, &token);
  ExecutionContext exec;
  exec.runtime = &controller;
  failpoint::Arm("brute/range", [&token] { token.RequestCancel(); });
  // World sums missing ranges would be wrong, not partial: a stopped
  // brute-force run discards everything.
  EXPECT_TRUE(BruteForceAllFcp(db, 2, exec).empty());
  EXPECT_EQ(controller.outcome(), Outcome::kCancelled);

  CancelToken token2;
  RunController controller2(RunBudget{}, &token2);
  ExecutionContext exec2;
  exec2.runtime = &controller2;
  failpoint::Arm("brute/range", [&token2] { token2.RequestCancel(); });
  const WorldProbabilities zeroed = BruteForceItemsetProbabilities(
      db, Itemset{1}, 2, exec2);
  EXPECT_EQ(zeroed.pr_f, 0.0);
  EXPECT_EQ(zeroed.pr_c, 0.0);
  EXPECT_EQ(zeroed.pr_fc, 0.0);
  EXPECT_EQ(controller2.outcome(), Outcome::kCancelled);
}

TEST_F(FailpointTest, EverySiteIsReachable) {
  // Counting probes only — the runs complete, but each documented site
  // must actually be compiled into its miner.
  const UncertainDatabase db = MakePaperExampleDb();
  const std::vector<std::pair<const char*, Algorithm>> sites = {
      {"mpfci/node", Algorithm::kMpfci},
      {"bfs/level", Algorithm::kMpfciBfs},
      {"naive/check", Algorithm::kNaive},
      {"topk/node", Algorithm::kTopK},
      {"pfi/node", Algorithm::kPfi},
      {"esup/node", Algorithm::kExpectedSupport},
  };
  for (const auto& [site, algorithm] : sites) {
    SCOPED_TRACE(site);
    failpoint::Arm(site);
    const MiningResult result = Mine(db, PaperRequest(algorithm));
    EXPECT_EQ(result.outcome(), Outcome::kComplete);
    EXPECT_GE(failpoint::HitCount(site), 1u);
    failpoint::Disarm(site);
  }

  failpoint::Arm("sampler/batch");
  MiningRequest sampled = PaperRequest(Algorithm::kMpfci);
  sampled.params.force_sampling = true;
  sampled.params.exact_event_limit = 0;
  sampled.params.pruning.fcp_bounds = false;
  sampled.params.epsilon = 0.5;
  sampled.params.delta = 0.3;
  Mine(db, sampled);
  EXPECT_GE(failpoint::HitCount("sampler/batch"), 1u);
}

}  // namespace
}  // namespace pfci
