// Cross-validation of the UF-growth-style weighted FP-growth against the
// DFS expected-support miner (both reached through the unified Mine()
// dispatch), plus weighted-count semantics checks.
#include <gtest/gtest.h>

#include "src/core/expected_support_miner.h"
#include "src/core/mine.h"
#include "src/harness/dataset_factory.h"
#include "src/util/random.h"

namespace pfci {
namespace {

UncertainDatabase RandomDb(Rng& rng, std::size_t n, std::size_t items,
                           double density) {
  UncertainDatabase db;
  for (std::size_t t = 0; t < n; ++t) {
    std::vector<Item> row;
    for (Item i = 0; i < items; ++i) {
      if (rng.NextBernoulli(density)) row.push_back(i);
    }
    if (row.empty()) row.push_back(static_cast<Item>(rng.NextBelow(items)));
    db.Add(Itemset(std::move(row)), 0.05 + 0.95 * rng.NextDouble());
  }
  return db;
}

/// Expected-support mining through Mine(): entries carry the expected
/// support in pr_f.
MiningResult MineEsup(const UncertainDatabase& db, double min_esup,
                      Algorithm algorithm) {
  MiningRequest request;
  request.algorithm = algorithm;
  request.min_esup = min_esup;
  MiningResult result = Mine(db, request);
  EXPECT_TRUE(result.ok()) << result.status_message;
  return result;
}

void ExpectSameAnswer(const MiningResult& a, const MiningResult& b) {
  ASSERT_EQ(a.itemsets.size(), b.itemsets.size());
  for (std::size_t i = 0; i < a.itemsets.size(); ++i) {
    EXPECT_EQ(a.itemsets[i].items, b.itemsets[i].items);
    EXPECT_NEAR(a.itemsets[i].pr_f, b.itemsets[i].pr_f, 1e-9);
  }
}

TEST(ExpectedSupportFpGrowth, PaperExample) {
  const UncertainDatabase db = MakePaperExampleDb();
  for (double min_esup : {0.5, 1.7, 2.5, 3.0}) {
    ExpectSameAnswer(
        MineEsup(db, min_esup, Algorithm::kExpectedSupportFpGrowth),
        MineEsup(db, min_esup, Algorithm::kExpectedSupport));
  }
}

TEST(ExpectedSupportFpGrowth, WeightedCountsAreExpectedSupports) {
  const UncertainDatabase db = MakeTable4Db();
  const MiningResult mined =
      MineEsup(db, 0.3, Algorithm::kExpectedSupportFpGrowth);
  EXPECT_FALSE(mined.itemsets.empty());
  for (const PfciEntry& entry : mined.itemsets) {
    EXPECT_NEAR(entry.pr_f, db.ExpectedSupport(entry.items), 1e-9)
        << entry.items.ToString(true);
  }
}

class EsupMinersAgree : public ::testing::TestWithParam<int> {};

TEST_P(EsupMinersAgree, RandomDatabases) {
  Rng rng(GetParam() * 97 + 11);
  const UncertainDatabase db =
      RandomDb(rng, 8 + rng.NextBelow(10), 4 + rng.NextBelow(3),
               0.3 + 0.5 * rng.NextDouble());
  for (double min_esup : {0.4, 1.0, 2.0}) {
    SCOPED_TRACE("seed=" + std::to_string(GetParam()) +
                 " min_esup=" + std::to_string(min_esup));
    ExpectSameAnswer(
        MineEsup(db, min_esup, Algorithm::kExpectedSupportFpGrowth),
        MineEsup(db, min_esup, Algorithm::kExpectedSupport));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDatabases, EsupMinersAgree,
                         ::testing::Range(0, 25));

TEST(ExpectedSupportFpGrowth, QuickDatasetScale) {
  const UncertainDatabase db = MakeUncertainQuest(BenchScale::kQuick);
  const double min_esup = 0.2 * static_cast<double>(db.size());
  ExpectSameAnswer(
      MineEsup(db, min_esup, Algorithm::kExpectedSupportFpGrowth),
      MineEsup(db, min_esup, Algorithm::kExpectedSupport));
}

}  // namespace
}  // namespace pfci
