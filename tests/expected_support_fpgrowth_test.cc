// Cross-validation of the UF-growth-style weighted FP-growth against the
// DFS expected-support miner, plus weighted-count semantics checks.
#include <gtest/gtest.h>

#include "src/core/expected_support_miner.h"
#include "src/harness/dataset_factory.h"
#include "src/util/random.h"

namespace pfci {
namespace {

UncertainDatabase RandomDb(Rng& rng, std::size_t n, std::size_t items,
                           double density) {
  UncertainDatabase db;
  for (std::size_t t = 0; t < n; ++t) {
    std::vector<Item> row;
    for (Item i = 0; i < items; ++i) {
      if (rng.NextBernoulli(density)) row.push_back(i);
    }
    if (row.empty()) row.push_back(static_cast<Item>(rng.NextBelow(items)));
    db.Add(Itemset(std::move(row)), 0.05 + 0.95 * rng.NextDouble());
  }
  return db;
}

void ExpectSameAnswer(const std::vector<ExpectedSupportEntry>& a,
                      const std::vector<ExpectedSupportEntry>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].items, b[i].items);
    EXPECT_NEAR(a[i].expected_support, b[i].expected_support, 1e-9);
  }
}

TEST(ExpectedSupportFpGrowth, PaperExample) {
  const UncertainDatabase db = MakePaperExampleDb();
  for (double min_esup : {0.5, 1.7, 2.5, 3.0}) {
    ExpectSameAnswer(MineExpectedSupportFpGrowth(db, min_esup),
                     MineExpectedSupport(db, min_esup));
  }
}

TEST(ExpectedSupportFpGrowth, WeightedCountsAreExpectedSupports) {
  const UncertainDatabase db = MakeTable4Db();
  const auto mined = MineExpectedSupportFpGrowth(db, 0.3);
  for (const auto& entry : mined) {
    EXPECT_NEAR(entry.expected_support, db.ExpectedSupport(entry.items),
                1e-9)
        << entry.items.ToString(true);
  }
}

class EsupMinersAgree : public ::testing::TestWithParam<int> {};

TEST_P(EsupMinersAgree, RandomDatabases) {
  Rng rng(GetParam() * 97 + 11);
  const UncertainDatabase db =
      RandomDb(rng, 8 + rng.NextBelow(10), 4 + rng.NextBelow(3),
               0.3 + 0.5 * rng.NextDouble());
  for (double min_esup : {0.4, 1.0, 2.0}) {
    SCOPED_TRACE("seed=" + std::to_string(GetParam()) +
                 " min_esup=" + std::to_string(min_esup));
    ExpectSameAnswer(MineExpectedSupportFpGrowth(db, min_esup),
                     MineExpectedSupport(db, min_esup));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDatabases, EsupMinersAgree,
                         ::testing::Range(0, 25));

TEST(ExpectedSupportFpGrowth, QuickDatasetScale) {
  const UncertainDatabase db = MakeUncertainQuest(BenchScale::kQuick);
  const double min_esup = 0.2 * static_cast<double>(db.size());
  ExpectSameAnswer(MineExpectedSupportFpGrowth(db, min_esup),
                   MineExpectedSupport(db, min_esup));
}

}  // namespace
}  // namespace pfci
