// Cross-model consistency: the Poisson-binomial machinery, the possible-
// world semantics, and the vertical index must all describe the same
// probability space. These tests tie the three layers together:
//   * the support pmf derived by world enumeration equals
//     PoissonBinomialPmf over the tid-list probabilities;
//   * expected supports equal both the pmf mean and the world-sum;
//   * the vertical index agrees with brute-force subset scans.
#include <gtest/gtest.h>

#include "src/data/vertical_index.h"
#include "src/data/world_enumerator.h"
#include "src/harness/dataset_factory.h"
#include "src/prob/poisson_binomial.h"
#include "src/util/random.h"

namespace pfci {
namespace {

UncertainDatabase RandomDb(Rng& rng, std::size_t n, std::size_t items,
                           double density) {
  UncertainDatabase db;
  for (std::size_t t = 0; t < n; ++t) {
    std::vector<Item> row;
    for (Item i = 0; i < items; ++i) {
      if (rng.NextBernoulli(density)) row.push_back(i);
    }
    if (row.empty()) row.push_back(static_cast<Item>(rng.NextBelow(items)));
    db.Add(Itemset(std::move(row)), 0.05 + 0.95 * rng.NextDouble());
  }
  return db;
}

class DistributionConsistency : public ::testing::TestWithParam<int> {};

TEST_P(DistributionConsistency, SupportPmfMatchesWorldEnumeration) {
  Rng rng(GetParam() * 101 + 3);
  const UncertainDatabase db = RandomDb(rng, 8, 4, 0.5);
  const VerticalIndex index(db);

  for (const Itemset& x :
       {Itemset{0}, Itemset{1, 2}, Itemset{0, 3}, Itemset{0, 1, 2, 3}}) {
    const TidSet tids = index.TidsOf(x);
    const std::vector<double> pmf =
        PoissonBinomialPmf(index.ProbsOf(tids));

    // Distribution of support(X) over explicit worlds.
    std::vector<double> world_pmf(db.size() + 1, 0.0);
    EnumerateWorlds(db, [&](const PossibleWorld& world, double prob) {
      world_pmf[world.Support(db, x)] += prob;
    });

    for (std::size_t s = 0; s <= db.size(); ++s) {
      const double expected = s < pmf.size() ? pmf[s] : 0.0;
      EXPECT_NEAR(world_pmf[s], expected, 1e-12)
          << x.ToString() << " s=" << s;
    }
  }
}

TEST_P(DistributionConsistency, ExpectedSupportThreeWays) {
  Rng rng(GetParam() * 211 + 5);
  const UncertainDatabase db = RandomDb(rng, 9, 4, 0.55);
  const VerticalIndex index(db);
  const Itemset x{0, 1};
  const TidSet tids = index.TidsOf(x);

  // 1. Direct sum of probabilities.
  const double direct = db.ExpectedSupport(x);
  // 2. Mean of the Poisson-binomial.
  const double via_pmf = PoissonBinomialMean(index.ProbsOf(tids));
  // 3. World-sum of support * probability.
  double via_worlds = 0.0;
  EnumerateWorlds(db, [&](const PossibleWorld& world, double prob) {
    via_worlds += static_cast<double>(world.Support(db, x)) * prob;
  });

  EXPECT_NEAR(direct, via_pmf, 1e-12);
  EXPECT_NEAR(direct, via_worlds, 1e-12);
}

TEST_P(DistributionConsistency, VerticalIndexMatchesSubsetScan) {
  Rng rng(GetParam() * 307 + 7);
  const UncertainDatabase db = RandomDb(rng, 12, 5, 0.5);
  const VerticalIndex index(db);
  for (int trial = 0; trial < 6; ++trial) {
    std::vector<Item> items;
    for (Item i = 0; i < 5; ++i) {
      if (rng.NextBernoulli(0.5)) items.push_back(i);
    }
    const Itemset x(items);
    // Brute-force tid-list.
    TidList expected;
    for (Tid tid = 0; tid < db.size(); ++tid) {
      if (x.IsSubsetOf(db.transaction(tid).items)) expected.push_back(tid);
    }
    EXPECT_EQ(index.TidsOf(x), expected) << x.ToString();
    EXPECT_EQ(index.Count(x), db.Count(x)) << x.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistributionConsistency,
                         ::testing::Range(0, 15));

TEST(NumericalStability, LargePmfStillSumsToOne) {
  Rng rng(515);
  std::vector<double> probs(3000);
  for (double& p : probs) p = rng.NextDouble();
  const std::vector<double> pmf = PoissonBinomialPmf(probs);
  double total = 0.0;
  for (double mass : pmf) {
    EXPECT_GE(mass, -1e-15);
    total += mass;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(NumericalStability, TailConsistentAtScale) {
  Rng rng(516);
  std::vector<double> probs(2500);
  for (double& p : probs) p = rng.NextDouble();
  // Tail + complement computed on disjoint halves of the pmf agree.
  const std::size_t threshold = 1250;
  const double tail = PoissonBinomialTailAtLeast(probs, threshold);
  const std::vector<double> pmf = PoissonBinomialPmf(probs);
  double suffix = 0.0;
  for (std::size_t s = threshold; s < pmf.size(); ++s) suffix += pmf[s];
  EXPECT_NEAR(tail, suffix, 1e-9);
  EXPECT_GE(tail, 0.0);
  EXPECT_LE(tail, 1.0);
}

TEST(NumericalStability, ExtremeProbabilitiesInTail) {
  // Mixtures of near-0, near-1 and exact-0/1 probabilities.
  std::vector<double> probs = {1.0, 1.0, 0.0, 1e-300, 1.0 - 1e-16, 0.5};
  const double tail2 = PoissonBinomialTailAtLeast(probs, 2);
  EXPECT_NEAR(tail2, 1.0, 1e-12);  // Two certain transactions.
  const double tail6 = PoissonBinomialTailAtLeast(probs, 6);
  EXPECT_NEAR(tail6, 0.0, 1e-12);  // Needs the exact-0 one.
  const double tail4 = PoissonBinomialTailAtLeast(probs, 4);
  // Requires the 0.5 and the 1-1e-16 (and possibly the 1e-300).
  EXPECT_NEAR(tail4, 0.5, 1e-10);
}

}  // namespace
}  // namespace pfci
