// Integration-level invariants on the realistic quick-scale datasets:
// result-set containments, threshold monotonicity, bound consistency, and
// cross-variant agreement at a scale far beyond the brute-force oracles.
#include <gtest/gtest.h>

#include "src/core/mine.h"
#include "src/core/pfi_miner.h"
#include "src/harness/dataset_factory.h"
#include "src/harness/variants.h"

namespace pfci {
namespace {

// All invariant checks go through the Mine() front door (the free-function
// wrappers are deprecated; their parity is pinned by api_contract_test).
MiningResult MineWith(Algorithm algorithm, const UncertainDatabase& db,
                      const MiningParams& params) {
  MiningRequest request;
  request.algorithm = algorithm;
  request.params = params;
  return Mine(db, request);
}

struct DatasetCase {
  const char* name;
  double rel_min_sup;
  bool mushroom;
};

class QuickDatasetInvariants : public ::testing::TestWithParam<DatasetCase> {
 protected:
  UncertainDatabase MakeDb() const {
    return GetParam().mushroom ? MakeUncertainMushroom(BenchScale::kQuick)
                               : MakeUncertainQuest(BenchScale::kQuick);
  }
  MiningParams MakeParams(const UncertainDatabase& db) const {
    MiningParams params;
    params.min_sup = AbsoluteMinSup(db.size(), GetParam().rel_min_sup);
    params.pfct = 0.8;
    return params;
  }
};

TEST_P(QuickDatasetInvariants, EntriesAreConsistent) {
  const UncertainDatabase db = MakeDb();
  const MiningParams params = MakeParams(db);
  const MiningResult result = MineWith(Algorithm::kMpfci, db, params);
  ASSERT_FALSE(result.itemsets.empty()) << "trivial test configuration";
  for (std::size_t i = 0; i < result.itemsets.size(); ++i) {
    const PfciEntry& entry = result.itemsets[i];
    // Sorted, duplicate-free output.
    if (i > 0) {
      EXPECT_LT(result.itemsets[i - 1].items, entry.items);
    }
    // Probabilistic sanity: pfct < fcp <= PrF <= 1, bounds bracket fcp.
    EXPECT_GT(entry.fcp, params.pfct);
    EXPECT_LE(entry.fcp, entry.pr_f + 1e-9);
    EXPECT_LE(entry.pr_f, 1.0 + 1e-12);
    EXPECT_LE(entry.fcp_lower, entry.fcp + 1e-9);
    EXPECT_GE(entry.fcp_upper + 1e-9, entry.fcp);
    // The itemset must actually be frequent-count-feasible.
    EXPECT_GE(db.Count(entry.items), params.min_sup);
  }
}

TEST_P(QuickDatasetInvariants, PfciSetContainedInPfiSet) {
  const UncertainDatabase db = MakeDb();
  const MiningParams params = MakeParams(db);
  const MiningResult pfci = MineWith(Algorithm::kMpfci, db, params);
  const std::vector<PfiEntry> pfis =
      MinePfi(db, params.min_sup, params.pfct);
  EXPECT_LE(pfci.itemsets.size(), pfis.size());
  // Every PFCI is a PFI with identical PrF.
  std::size_t pfi_pos = 0;
  for (const PfciEntry& entry : pfci.itemsets) {
    while (pfi_pos < pfis.size() && pfis[pfi_pos].items < entry.items) {
      ++pfi_pos;
    }
    ASSERT_LT(pfi_pos, pfis.size());
    ASSERT_EQ(pfis[pfi_pos].items, entry.items);
    EXPECT_NEAR(pfis[pfi_pos].pr_f, entry.pr_f, 1e-9);
  }
}

TEST_P(QuickDatasetInvariants, MonotoneInPfct) {
  const UncertainDatabase db = MakeDb();
  MiningParams params = MakeParams(db);
  params.pfct = 0.7;
  const MiningResult loose = MineWith(Algorithm::kMpfci, db, params);
  params.pfct = 0.9;
  const MiningResult tight = MineWith(Algorithm::kMpfci, db, params);
  EXPECT_LE(tight.itemsets.size(), loose.itemsets.size());
  // Tight answer ⊆ loose answer.
  for (const PfciEntry& entry : tight.itemsets) {
    EXPECT_NE(loose.Find(entry.items), nullptr) << entry.items.ToString();
  }
}

TEST_P(QuickDatasetInvariants, MonotoneInMinSup) {
  const UncertainDatabase db = MakeDb();
  MiningParams params = MakeParams(db);
  const MiningResult base = MineWith(Algorithm::kMpfci, db, params);
  MiningParams harder = params;
  harder.min_sup = params.min_sup * 2;
  const MiningResult fewer_frequent = MineWith(Algorithm::kMpfci, db, harder);
  // Raising min_sup cannot increase the number of *frequent* itemsets,
  // and in practice shrinks the closed answer as well; at minimum, every
  // surviving itemset must satisfy the stronger count requirement.
  for (const PfciEntry& entry : fewer_frequent.itemsets) {
    EXPECT_GE(db.Count(entry.items), harder.min_sup);
  }
}

TEST_P(QuickDatasetInvariants, AllVariantsAgreeAtScale) {
  const UncertainDatabase db = MakeDb();
  const MiningParams params = MakeParams(db);
  const MiningResult reference = MineWith(Algorithm::kMpfci, db, params);
  for (AlgorithmVariant variant :
       {AlgorithmVariant::kNoCh, AlgorithmVariant::kNoSuper,
        AlgorithmVariant::kNoSub, AlgorithmVariant::kNoBound,
        AlgorithmVariant::kBfs}) {
    const MiningResult result = RunVariant(variant, db, params);
    ASSERT_EQ(result.itemsets.size(), reference.itemsets.size())
        << VariantName(variant);
    for (std::size_t i = 0; i < result.itemsets.size(); ++i) {
      EXPECT_EQ(result.itemsets[i].items, reference.itemsets[i].items)
          << VariantName(variant);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Datasets, QuickDatasetInvariants,
    ::testing::Values(DatasetCase{"mushroom_0.3", 0.3, true},
                      DatasetCase{"mushroom_0.2", 0.2, true},
                      DatasetCase{"quest_0.3", 0.3, false},
                      DatasetCase{"quest_0.2", 0.2, false}),
    [](const ::testing::TestParamInfo<DatasetCase>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name;
    });

TEST(EdgeCases, AllCertainTransactions) {
  // p = 1 everywhere: exactly one world; results must equal exact closed
  // mining and every probability must be exactly 0 or 1.
  UncertainDatabase db;
  db.Add(Itemset{0, 1}, 1.0);
  db.Add(Itemset{0, 1}, 1.0);
  db.Add(Itemset{0, 2}, 1.0);
  MiningParams params;
  params.min_sup = 2;
  params.pfct = 0.5;
  const MiningResult result = MineWith(Algorithm::kMpfci, db, params);
  ASSERT_EQ(result.itemsets.size(), 2u);  // {0} (support 3), {0,1}.
  EXPECT_EQ(result.itemsets[0].items, (Itemset{0}));
  EXPECT_EQ(result.itemsets[1].items, (Itemset{0, 1}));
  for (const PfciEntry& entry : result.itemsets) {
    EXPECT_DOUBLE_EQ(entry.fcp, 1.0);
    EXPECT_DOUBLE_EQ(entry.pr_f, 1.0);
  }
}

TEST(EdgeCases, MinSupLargerThanDatabase) {
  UncertainDatabase db;
  db.Add(Itemset{0}, 0.9);
  MiningParams params;
  params.min_sup = 5;
  params.pfct = 0.1;
  EXPECT_TRUE(MineWith(Algorithm::kMpfci, db, params).itemsets.empty());
  EXPECT_TRUE(MineWith(Algorithm::kMpfciBfs, db, params).itemsets.empty());
}

TEST(EdgeCases, DuplicateTransactionsAreIndependentTuples) {
  // Two identical rows with p = 0.5 each: support of {0} is
  // Binomial(2, .5); PrF at min_sup 2 is 0.25, PrFC likewise.
  UncertainDatabase db;
  db.Add(Itemset{0}, 0.5);
  db.Add(Itemset{0}, 0.5);
  MiningParams params;
  params.min_sup = 2;
  params.pfct = 0.2;
  const MiningResult result = MineWith(Algorithm::kMpfci, db, params);
  ASSERT_EQ(result.itemsets.size(), 1u);
  EXPECT_NEAR(result.itemsets[0].fcp, 0.25, 1e-12);
}

TEST(EdgeCases, VeryHighPfctYieldsEmptyAnswer) {
  const UncertainDatabase db = MakePaperExampleDb();
  MiningParams params;
  params.min_sup = 2;
  params.pfct = 0.99;
  EXPECT_TRUE(MineWith(Algorithm::kMpfci, db, params).itemsets.empty());
}

TEST(EdgeCases, SingleItemDatabase) {
  UncertainDatabase db;
  for (int i = 0; i < 6; ++i) db.Add(Itemset{4}, 0.5);
  MiningParams params;
  params.min_sup = 3;
  params.pfct = 0.3;
  const MiningResult result = MineWith(Algorithm::kMpfci, db, params);
  ASSERT_EQ(result.itemsets.size(), 1u);
  EXPECT_EQ(result.itemsets[0].items, (Itemset{4}));
  // Pr{Binomial(6, .5) >= 3} = 42/64 = 0.65625, and the itemset is always
  // closed when present.
  EXPECT_NEAR(result.itemsets[0].fcp, 0.65625, 1e-12);
}

}  // namespace
}  // namespace pfci
