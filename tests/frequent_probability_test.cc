// Unit tests for the frequent-probability evaluator (Definition 3.4).
#include "src/core/frequent_probability.h"

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/data/vertical_index.h"
#include "src/harness/dataset_factory.h"
#include "src/util/random.h"

namespace pfci {
namespace {

TEST(FrequentProbability, PaperExampleValues) {
  const UncertainDatabase db = MakePaperExampleDb();
  const VerticalIndex index(db);
  const FrequentProbability freq(index, 2);
  // PrF(abc) over (.9,.6,.7,.9) at min_sup 2.
  EXPECT_NEAR(freq.PrF(index.TidsOf(Itemset{0, 1, 2})), 0.9726, 1e-12);
  // PrF(abcd) = .9 * .9.
  EXPECT_NEAR(freq.PrF(index.TidsOf(Itemset{0, 1, 2, 3})), 0.81, 1e-12);
}

TEST(FrequentProbability, ShortTidListIsZero) {
  const UncertainDatabase db = MakePaperExampleDb();
  const VerticalIndex index(db);
  const FrequentProbability freq(index, 3);
  EXPECT_DOUBLE_EQ(freq.PrF(index.TidsOf(Itemset{3})), 0.0);  // Count 2 < 3.
}

TEST(FrequentProbability, UpperBoundDominates) {
  const UncertainDatabase db = MakePaperExampleDb();
  const VerticalIndex index(db);
  for (std::size_t min_sup : {1, 2, 3, 4}) {
    const FrequentProbability freq(index, min_sup);
    for (const Itemset& x :
         {Itemset{0}, Itemset{3}, Itemset{0, 1, 2}, Itemset{0, 3}}) {
      const TidSet tids = index.TidsOf(x);
      EXPECT_GE(freq.PrFUpperBound(tids) + 1e-12, freq.PrF(tids))
          << x.ToString() << " min_sup=" << min_sup;
    }
  }
}

TEST(FrequentProbability, ShortCircuitsMatchExactAtScale) {
  // Build a database large enough to trigger the Chernoff short circuits
  // and verify PrF still answers 0/1 correctly.
  UncertainDatabase db;
  for (int i = 0; i < 400; ++i) db.Add(Itemset{0}, 0.9);
  const VerticalIndex index(db);
  {
    // Expected support 360 >> 100: PrF ~ 1 via short circuit.
    const FrequentProbability freq(index, 100);
    EXPECT_DOUBLE_EQ(freq.PrF(index.TidsOfItem(0)), 1.0);
    EXPECT_EQ(freq.dp_runs(), 0u);  // Short circuit, no DP.
  }
  {
    // Threshold 399 is nearly impossible: PrF ~ 0.
    const FrequentProbability freq(index, 399);
    EXPECT_LT(freq.PrF(index.TidsOfItem(0)), 1e-10);
  }
}

TEST(FrequentProbability, AntiMonotoneInItemset) {
  Rng rng(5150);
  UncertainDatabase db;
  for (int t = 0; t < 10; ++t) {
    std::vector<Item> items;
    for (Item i = 0; i < 5; ++i) {
      if (rng.NextBernoulli(0.6)) items.push_back(i);
    }
    if (items.empty()) items.push_back(0);
    db.Add(Itemset(std::move(items)), 0.1 + 0.9 * rng.NextDouble());
  }
  const VerticalIndex index(db);
  const FrequentProbability freq(index, 2);
  // PrF(X) >= PrF(X + e) for every X, e.
  for (Item a = 0; a < 5; ++a) {
    for (Item b = 0; b < 5; ++b) {
      if (a == b) continue;
      const double single = freq.PrF(index.TidsOf(Itemset{a}));
      const double pair = freq.PrF(index.TidsOf(Itemset{a, b}));
      EXPECT_LE(pair, single + 1e-12) << a << "," << b;
    }
  }
}

TEST(FrequentProbability, MatchesBruteForceOnRandomDb) {
  Rng rng(31337);
  UncertainDatabase db;
  for (int t = 0; t < 9; ++t) {
    std::vector<Item> items;
    for (Item i = 0; i < 4; ++i) {
      if (rng.NextBernoulli(0.5)) items.push_back(i);
    }
    if (items.empty()) items.push_back(0);
    db.Add(Itemset(std::move(items)), 0.05 + 0.95 * rng.NextDouble());
  }
  const VerticalIndex index(db);
  for (std::size_t min_sup : {1, 2, 4}) {
    const FrequentProbability freq(index, min_sup);
    for (const Itemset& x : {Itemset{0}, Itemset{1, 2}, Itemset{0, 3},
                             Itemset{0, 1, 2, 3}}) {
      const WorldProbabilities truth =
          BruteForceItemsetProbabilities(db, x, min_sup);
      EXPECT_NEAR(freq.PrF(index.TidsOf(x)), truth.pr_f, 1e-9)
          << x.ToString() << " min_sup=" << min_sup;
    }
  }
}

}  // namespace
}  // namespace pfci
