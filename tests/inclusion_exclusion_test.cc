// Unit tests for the generic inclusion-exclusion union computation.
#include "src/prob/inclusion_exclusion.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/util/random.h"

namespace pfci {
namespace {

TEST(InclusionExclusion, NoEvents) {
  EXPECT_DOUBLE_EQ(
      UnionByInclusionExclusion(0, [](const std::vector<std::size_t>&) {
        return 1.0;
      }),
      0.0);
}

TEST(InclusionExclusion, SingleEvent) {
  EXPECT_DOUBLE_EQ(
      UnionByInclusionExclusion(1,
                                [](const std::vector<std::size_t>& s) {
                                  EXPECT_EQ(s.size(), 1u);
                                  return 0.37;
                                }),
      0.37);
}

TEST(InclusionExclusion, TwoEventsClassicFormula) {
  // P(A ∪ B) = P(A) + P(B) - P(A ∩ B).
  const auto prob = [](const std::vector<std::size_t>& s) {
    if (s.size() == 1) return s[0] == 0 ? 0.5 : 0.4;
    return 0.2;
  };
  EXPECT_NEAR(UnionByInclusionExclusion(2, prob), 0.7, 1e-12);
}

TEST(InclusionExclusion, IndependentEvents) {
  // For independent events Pr(∩S) = Π p_i and the union is
  // 1 - Π (1 - p_i).
  const std::vector<double> p = {0.1, 0.3, 0.5, 0.7, 0.2};
  const auto prob = [&p](const std::vector<std::size_t>& s) {
    double value = 1.0;
    for (std::size_t i : s) value *= p[i];
    return value;
  };
  double expected = 1.0;
  for (double pi : p) expected *= 1.0 - pi;
  EXPECT_NEAR(UnionByInclusionExclusion(p.size(), prob), 1.0 - expected,
              1e-12);
}

TEST(InclusionExclusion, FiniteSpaceCrossCheck) {
  // Random events on a finite outcome space: inclusion-exclusion must
  // equal the direct union measure.
  Rng rng(77);
  const std::size_t m = 6;
  const std::size_t space = 32;
  std::vector<double> outcome_prob(space);
  double total = 0.0;
  for (double& q : outcome_prob) {
    q = rng.NextDouble();
    total += q;
  }
  for (double& q : outcome_prob) q /= total;
  std::vector<std::vector<bool>> member(m, std::vector<bool>(space));
  for (auto& row : member) {
    for (std::size_t w = 0; w < space; ++w) row[w] = rng.NextBernoulli(0.4);
  }
  const auto prob = [&](const std::vector<std::size_t>& s) {
    double value = 0.0;
    for (std::size_t w = 0; w < space; ++w) {
      bool in_all = true;
      for (std::size_t i : s) in_all = in_all && member[i][w];
      if (in_all) value += outcome_prob[w];
    }
    return value;
  };
  double direct = 0.0;
  for (std::size_t w = 0; w < space; ++w) {
    bool in_any = false;
    for (std::size_t i = 0; i < m; ++i) in_any = in_any || member[i][w];
    if (in_any) direct += outcome_prob[w];
  }
  EXPECT_NEAR(UnionByInclusionExclusion(m, prob), direct, 1e-12);
}

}  // namespace
}  // namespace pfci
