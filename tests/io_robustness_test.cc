// Robustness of the text loaders: random byte soup, truncated files, and
// boundary values must never crash, and must either parse cleanly or fail
// with an error while leaving the output empty.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "src/data/database_io.h"
#include "src/util/random.h"

namespace pfci {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

TEST(IoRobustness, RandomByteSoupNeverCrashes) {
  const std::string path = TempPath("pfci_fuzz.utd");
  Rng rng(4096);
  for (int trial = 0; trial < 200; ++trial) {
    std::string content;
    const std::size_t length = rng.NextBelow(200);
    for (std::size_t i = 0; i < length; ++i) {
      // Printable-ish bytes plus newlines and separators.
      const char alphabet[] =
          "0123456789 .eE+-#\nabcxyz\t\r";
      content += alphabet[rng.NextBelow(sizeof(alphabet) - 1)];
    }
    WriteFile(path, content);
    UncertainDatabase db;
    std::string error;
    const bool ok = LoadUncertainDatabase(path, &db, &error);
    if (!ok) {
      EXPECT_TRUE(db.empty()) << "failed load must leave db empty";
      EXPECT_FALSE(error.empty());
    } else {
      for (const auto& t : db.transactions()) {
        EXPECT_GT(t.prob, 0.0);
        EXPECT_LE(t.prob, 1.0);
      }
    }
  }
  std::remove(path.c_str());
}

TEST(IoRobustness, BoundaryProbabilities) {
  const std::string path = TempPath("pfci_boundary.utd");
  WriteFile(path, "1.0 1 2\n0.0000001 3\n");
  UncertainDatabase db;
  std::string error;
  ASSERT_TRUE(LoadUncertainDatabase(path, &db, &error)) << error;
  EXPECT_DOUBLE_EQ(db.prob(0), 1.0);
  EXPECT_GT(db.prob(1), 0.0);

  WriteFile(path, "0 1 2\n");  // Zero probability: rejected.
  EXPECT_FALSE(LoadUncertainDatabase(path, &db, &error));
  WriteFile(path, "1.0000001 1\n");  // Above one: rejected.
  EXPECT_FALSE(LoadUncertainDatabase(path, &db, &error));
  WriteFile(path, "-0.5 1\n");  // Negative: rejected.
  EXPECT_FALSE(LoadUncertainDatabase(path, &db, &error));
  std::remove(path.c_str());
}

TEST(IoRobustness, NonFiniteProbabilitiesAreRejected) {
  // NaN and infinities are parseable as doubles but meaningless as
  // probabilities; the loader must refuse them with the offending line.
  const std::string path = TempPath("pfci_nonfinite.utd");
  for (const char* bad : {"nan 1\n", "NaN 1 2\n", "inf 1\n", "-inf 1\n",
                          "infinity 1\n", "1e309 1\n"}) {
    WriteFile(path, std::string("0.5 9\n") + bad);
    UncertainDatabase db;
    std::string error;
    EXPECT_FALSE(LoadUncertainDatabase(path, &db, &error)) << bad;
    EXPECT_TRUE(db.empty()) << "failed load must leave db empty";
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
    EXPECT_NE(error.find("probability"), std::string::npos) << error;
  }
  std::remove(path.c_str());
}

TEST(IoRobustness, DuplicateItemsWithinLineAreRejected) {
  // The Itemset constructor silently dedupes, so without an explicit
  // check a corrupted file would load "successfully" with the wrong
  // transaction lengths. Both loaders must reject with the line number
  // and the duplicated item.
  const std::string path = TempPath("pfci_dup.utd");
  WriteFile(path, "0.5 1 2\n0.25 7 3 7\n");
  UncertainDatabase db;
  std::string error;
  EXPECT_FALSE(LoadUncertainDatabase(path, &db, &error));
  EXPECT_TRUE(db.empty()) << "failed load must leave db empty";
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("duplicate item '7'"), std::string::npos) << error;

  const std::string dat_path = TempPath("pfci_dup.dat");
  WriteFile(dat_path, "1 2 3\n4 4\n");
  std::vector<Itemset> transactions;
  EXPECT_FALSE(LoadExactTransactions(dat_path, &transactions, &error));
  EXPECT_TRUE(transactions.empty());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("duplicate item '4'"), std::string::npos) << error;
  std::remove(path.c_str());
  std::remove(dat_path.c_str());
}

TEST(IoRobustness, ProbabilityOnlyLinesAreRejected) {
  // A line with a probability and no items is almost always a formatting
  // accident (a transaction line that lost its items); reject it with a
  // line-numbered error instead of silently adding an empty transaction.
  const std::string path = TempPath("pfci_empty_tx.utd");
  WriteFile(path, "0.5\n0.25 7\n");
  UncertainDatabase db;
  std::string error;
  EXPECT_FALSE(LoadUncertainDatabase(path, &db, &error));
  EXPECT_TRUE(db.empty()) << "failed load must leave db empty";
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
  EXPECT_NE(error.find("no items"), std::string::npos) << error;

  // The line number must point at the offending line, not a count of
  // parsed transactions: comments and blank lines still advance it.
  WriteFile(path, "# header\n0.25 7\n\n0.5\n");
  EXPECT_FALSE(LoadUncertainDatabase(path, &db, &error));
  EXPECT_NE(error.find("line 4"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(IoRobustness, ProbabilitiesRoundTripBitExact) {
  // Save/Load must be lossless: reloaded probabilities must match the
  // originals bit-for-bit, including values that need all 17 significant
  // digits (0.1 + 0.2, nextafter neighbours, random doubles).
  const std::string path = TempPath("pfci_prob_roundtrip.utd");
  UncertainDatabase db;
  db.Add(Itemset{0}, 0.1 + 0.2);
  db.Add(Itemset{1}, std::nextafter(0.5, 1.0));
  db.Add(Itemset{2}, std::nextafter(1.0, 0.0));
  db.Add(Itemset{3}, 1.0);
  db.Add(Itemset{4}, std::numeric_limits<double>::min());
  Rng rng(20240806);
  for (Item item = 5; item < 205; ++item) {
    double p = rng.NextDouble();
    if (!(p > 0.0)) p = 0.5;
    db.Add(Itemset{item}, p);
  }
  ASSERT_TRUE(SaveUncertainDatabase(db, path));
  UncertainDatabase loaded;
  std::string error;
  ASSERT_TRUE(LoadUncertainDatabase(path, &loaded, &error)) << error;
  ASSERT_EQ(loaded.size(), db.size());
  for (std::size_t i = 0; i < db.size(); ++i) {
    std::uint64_t saved_bits = 0;
    std::uint64_t loaded_bits = 0;
    const double saved = db.prob(i);
    const double reloaded = loaded.prob(i);
    std::memcpy(&saved_bits, &saved, sizeof(saved_bits));
    std::memcpy(&loaded_bits, &reloaded, sizeof(loaded_bits));
    EXPECT_EQ(saved_bits, loaded_bits)
        << "transaction " << i << ": " << saved << " != " << reloaded;
  }
  std::remove(path.c_str());
}

TEST(IoRobustness, CommentsAndBlankLinesIgnoredEverywhere) {
  const std::string path = TempPath("pfci_comments.utd");
  WriteFile(path, "# header\n\n   \n0.5 1 2\n# middle\n0.25 3\n");
  UncertainDatabase db;
  std::string error;
  ASSERT_TRUE(LoadUncertainDatabase(path, &db, &error)) << error;
  EXPECT_EQ(db.size(), 2u);
  std::remove(path.c_str());
}

TEST(IoRobustness, ExactLoaderRejectsNegativeItems) {
  const std::string path = TempPath("pfci_neg.dat");
  WriteFile(path, "1 2 -3\n");
  std::vector<Itemset> transactions;
  std::string error;
  EXPECT_FALSE(LoadExactTransactions(path, &transactions, &error));
  EXPECT_TRUE(transactions.empty());
  std::remove(path.c_str());
}

TEST(IoRobustness, LargeItemIdsRoundTrip) {
  const std::string path = TempPath("pfci_large_ids.utd");
  UncertainDatabase db;
  db.Add(Itemset{0, 4294967294u}, 0.5);
  ASSERT_TRUE(SaveUncertainDatabase(db, path));
  UncertainDatabase loaded;
  std::string error;
  ASSERT_TRUE(LoadUncertainDatabase(path, &loaded, &error)) << error;
  EXPECT_EQ(loaded.transaction(0).items, (Itemset{0, 4294967294u}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pfci
