// Tests for the Theorem 3.1 #P-hardness reduction and the closed
// probability PrC, cross-checked three ways: brute-force assignment
// counting, inclusion-exclusion via the reduction, and possible-world
// enumeration.
#include "src/core/mdnf_reduction.h"

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/closed_probability.h"
#include "src/harness/dataset_factory.h"
#include "src/util/random.h"

namespace pfci {
namespace {

TEST(MdnfReduction, PaperExampleDatabaseShape) {
  // F = (v1 ∧ v2 ∧ v3) ∨ (v1 ∧ v2 ∧ v4) ∨ (v2 ∧ v3 ∧ v4): the paper's
  // Table VI instance (0-based variables).
  MonotoneDnf formula;
  formula.num_variables = 4;
  formula.clauses = {{0, 1, 2}, {0, 1, 3}, {1, 2, 3}};
  const MdnfReduction reduction = BuildMdnfReduction(formula);
  ASSERT_EQ(reduction.db.size(), 4u);
  // Table VI: T1 = {X, e3}, T2 = {X}, T3 = {X, e2}, T4 = {X, e1}
  // (e_i item ids are 1+i here, X is item 0).
  EXPECT_EQ(reduction.db.transaction(0).items, (Itemset{0, 3}));
  EXPECT_EQ(reduction.db.transaction(1).items, (Itemset{0}));
  EXPECT_EQ(reduction.db.transaction(2).items, (Itemset{0, 2}));
  EXPECT_EQ(reduction.db.transaction(3).items, (Itemset{0, 1}));
  for (Tid tid = 0; tid < 4; ++tid) {
    EXPECT_DOUBLE_EQ(reduction.db.prob(tid), 0.5);
  }
}

TEST(MdnfReduction, BruteForceCounter) {
  MonotoneDnf formula;
  formula.num_variables = 3;
  formula.clauses = {{0}, {1, 2}};
  // v0 ∨ (v1 ∧ v2): satisfying assignments = 4 (v0 true) + 1 (v0 false,
  // v1 v2 true) = 5.
  EXPECT_EQ(CountSatisfyingAssignments(formula), 5u);
}

TEST(MdnfReduction, ClosedProbabilityEncodesModelCount) {
  MonotoneDnf formula;
  formula.num_variables = 4;
  formula.clauses = {{0, 1, 2}, {0, 1, 3}, {1, 2, 3}};
  const std::uint64_t direct = CountSatisfyingAssignments(formula);
  EXPECT_EQ(CountSatisfyingAssignmentsViaClosedProbability(formula), direct);

  // And PrC(X) by world enumeration matches 1 - N/2^m.
  const MdnfReduction reduction = BuildMdnfReduction(formula);
  const WorldProbabilities truth = BruteForceItemsetProbabilities(
      reduction.db, reduction.x, /*min_sup=*/1);
  EXPECT_NEAR(truth.pr_c, 1.0 - static_cast<double>(direct) / 16.0, 1e-12);
}

TEST(MdnfReduction, RandomFormulasRoundTrip) {
  Rng rng(606);
  for (int trial = 0; trial < 25; ++trial) {
    MonotoneDnf formula;
    formula.num_variables = 2 + rng.NextBelow(6);
    const std::size_t num_clauses = 1 + rng.NextBelow(5);
    for (std::size_t c = 0; c < num_clauses; ++c) {
      std::vector<std::size_t> clause;
      for (std::size_t v = 0; v < formula.num_variables; ++v) {
        if (rng.NextBernoulli(0.5)) clause.push_back(v);
      }
      if (clause.empty()) clause.push_back(rng.NextBelow(formula.num_variables));
      formula.clauses.push_back(std::move(clause));
    }
    EXPECT_EQ(CountSatisfyingAssignmentsViaClosedProbability(formula),
              CountSatisfyingAssignments(formula))
        << "trial=" << trial;
  }
}

TEST(ClosedProbability, PaperExampleValues) {
  const UncertainDatabase db = MakePaperExampleDb();
  // PrC = PrFC at min_sup = 1; cross-check against world enumeration.
  for (const Itemset& x : {Itemset{0, 1, 2}, Itemset{0, 1, 2, 3},
                           Itemset{0, 1}, Itemset{3}}) {
    const WorldProbabilities truth =
        BruteForceItemsetProbabilities(db, x, 1);
    EXPECT_NEAR(ExactClosedProbability(db, x), truth.pr_c, 1e-12)
        << x.ToString(true);
  }
}

TEST(ClosedProbability, ApproxTracksExact) {
  const UncertainDatabase db = MakeTable4Db();
  Rng rng(9);
  const Itemset abc{0, 1, 2};
  const double exact = ExactClosedProbability(db, abc);
  const ApproxFcpResult approx =
      ApproxClosedProbability(db, abc, 0.05, 0.05, rng);
  EXPECT_NEAR(approx.fcp, exact, 0.03);
}

}  // namespace
}  // namespace pfci
