// TidSet unit tests: representation selection, the core set algebra on
// hand-built cases, and the sparse kernels' merge/galloping crossover.
#include "src/data/tidset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/data/tidlist.h"

namespace pfci {
namespace {

TidSetPolicy Forced(TidSetMode mode) {
  TidSetPolicy policy;
  policy.mode = mode;
  return policy;
}

TEST(TidSetMode, Names) {
  EXPECT_STREQ(TidSetModeName(TidSetMode::kAdaptive), "adaptive");
  EXPECT_STREQ(TidSetModeName(TidSetMode::kSparse), "sparse");
  EXPECT_STREQ(TidSetModeName(TidSetMode::kDense), "dense");

  TidSetMode mode = TidSetMode::kAdaptive;
  EXPECT_TRUE(ParseTidSetMode("dense", &mode));
  EXPECT_EQ(mode, TidSetMode::kDense);
  EXPECT_TRUE(ParseTidSetMode("sparse", &mode));
  EXPECT_EQ(mode, TidSetMode::kSparse);
  EXPECT_TRUE(ParseTidSetMode("adaptive", &mode));
  EXPECT_EQ(mode, TidSetMode::kAdaptive);
  EXPECT_FALSE(ParseTidSetMode("bitmap", &mode));
  EXPECT_FALSE(ParseTidSetMode("", &mode));
}

TEST(TidSet, AdaptiveRepresentationSelection) {
  // Universe below min_dense_universe: always sparse, however dense.
  TidList all_small(128);
  for (Tid t = 0; t < 128; ++t) all_small[t] = t;
  EXPECT_FALSE(TidSet(all_small, 128).dense());

  // Universe 1024, divisor 16: dense from size 64 up.
  TidList just_below(63), at_threshold(64);
  for (Tid t = 0; t < 63; ++t) just_below[t] = t;
  for (Tid t = 0; t < 64; ++t) at_threshold[t] = t;
  EXPECT_FALSE(TidSet(just_below, 1024).dense());
  EXPECT_TRUE(TidSet(at_threshold, 1024).dense());
}

TEST(TidSet, ForcedModesOverrideDensity) {
  TidList tids = {0, 5, 1000};
  EXPECT_TRUE(TidSet(tids, 1024, Forced(TidSetMode::kDense)).dense());
  TidList most(1000);
  for (Tid t = 0; t < 1000; ++t) most[t] = t;
  EXPECT_FALSE(TidSet(most, 1024, Forced(TidSetMode::kSparse)).dense());
}

TEST(TidSet, ContainsForEachRoundtrip) {
  const TidList tids = {0, 3, 63, 64, 65, 127, 500, 1023};
  for (const TidSetMode mode :
       {TidSetMode::kSparse, TidSetMode::kDense, TidSetMode::kAdaptive}) {
    const TidSet set(tids, 1024, Forced(mode));
    EXPECT_EQ(set.size(), tids.size());
    EXPECT_EQ(set.universe(), 1024u);
    EXPECT_EQ(set.ToTidList(), tids);
    EXPECT_EQ(set, tids);
    for (Tid t : tids) EXPECT_TRUE(set.Contains(t));
    EXPECT_FALSE(set.Contains(1));
    EXPECT_FALSE(set.Contains(62));
    EXPECT_FALSE(set.Contains(1022));
    TidList seen;
    set.ForEach([&seen](Tid t) { seen.push_back(t); });
    EXPECT_EQ(seen, tids);  // Ascending order in every representation.
  }
}

TEST(TidSet, AllAndEmpty) {
  for (const TidSetMode mode : {TidSetMode::kSparse, TidSetMode::kDense}) {
    const TidSet all = TidSet::All(130, Forced(mode));
    EXPECT_EQ(all.size(), 130u);
    EXPECT_TRUE(all.Contains(0));
    EXPECT_TRUE(all.Contains(129));
    TidList expect(130);
    for (Tid t = 0; t < 130; ++t) expect[t] = t;
    EXPECT_EQ(all.ToTidList(), expect);
  }
  const TidSet empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.ToTidList(), TidList{});
  const TidSet all = TidSet::All(64, Forced(TidSetMode::kDense));
  // Empty-set ops against any universe are accepted.
  EXPECT_TRUE(Intersect(all, empty).empty());
  EXPECT_EQ(Difference(all, empty), all);
  EXPECT_TRUE(IsSubsetOf(empty, all));
}

TEST(TidSet, AlgebraAcrossMixedRepresentations) {
  const TidList a_tids = {1, 3, 5, 7, 64, 65, 300};
  const TidList b_tids = {3, 4, 5, 8, 65, 299, 300};
  const TidList both = IntersectTids(a_tids, b_tids);
  const TidList a_minus_b = DifferenceTids(a_tids, b_tids);
  for (const TidSetMode ma : {TidSetMode::kSparse, TidSetMode::kDense}) {
    for (const TidSetMode mb : {TidSetMode::kSparse, TidSetMode::kDense}) {
      SCOPED_TRACE(std::string(TidSetModeName(ma)) + " x " +
                   TidSetModeName(mb));
      const TidSet a(a_tids, 512, Forced(ma));
      const TidSet b(b_tids, 512, Forced(mb));
      EXPECT_EQ(Intersect(a, b), both);
      EXPECT_EQ(IntersectSize(a, b), both.size());
      EXPECT_EQ(Difference(a, b), a_minus_b);
      EXPECT_FALSE(IsSubsetOf(a, b));
      EXPECT_TRUE(IsSubsetOf(TidSet(both, 512, Forced(ma)), b));
      EXPECT_TRUE(IsSubsetOf(a, a));
    }
  }
}

TEST(TidSet, EqualityIsRepresentationIndependent) {
  const TidList tids = {2, 9, 77, 400};
  const TidSet sparse(tids, 512, Forced(TidSetMode::kSparse));
  const TidSet dense(tids, 512, Forced(TidSetMode::kDense));
  EXPECT_EQ(sparse, dense);
  EXPECT_EQ(dense, sparse);
  const TidSet other(TidList{2, 9, 77, 401}, 512, Forced(TidSetMode::kDense));
  EXPECT_FALSE(sparse == other);
}

// ---------------------------------------------------------------------
// Galloping crossover: the sparse kernels must agree with the std
// reference on either side of kGallopSkewRatio.
// ---------------------------------------------------------------------

TidList EveryKth(std::size_t universe, std::size_t k, Tid offset) {
  TidList out;
  for (Tid t = offset; t < universe; t += static_cast<Tid>(k)) {
    out.push_back(t);
  }
  return out;
}

void CheckIntersectKernel(const TidList& a, const TidList& b) {
  TidList out;
  const std::size_t n = tidset_internal::IntersectSorted(
      a.data(), a.size(), b.data(), b.size(), &out);
  const TidList expect = IntersectTids(a, b);
  EXPECT_EQ(out, expect);
  EXPECT_EQ(n, expect.size());
  // Count-only form agrees.
  EXPECT_EQ(tidset_internal::IntersectSorted(a.data(), a.size(), b.data(),
                                             b.size(), nullptr),
            expect.size());
}

TEST(TidSetGalloping, IntersectAgreesAcrossTheSkewCrossover) {
  const std::size_t universe = 1u << 16;
  const TidList big = EveryKth(universe, 2, 0);  // 32768 even tids.
  const std::size_t ratio = tidset_internal::kGallopSkewRatio;
  // Sizes straddling the crossover: na * 32 <= nb gallops, above merges.
  for (const std::size_t small_size :
       {big.size() / ratio / 4, big.size() / ratio - 1, big.size() / ratio,
        big.size() / ratio + 1, big.size() / ratio * 4}) {
    SCOPED_TRACE(small_size);
    // Mixed hits (even) and misses (odd).
    TidList small;
    for (std::size_t i = 0; i < small_size; ++i) {
      small.push_back(static_cast<Tid>(i * (universe / small_size) + i % 2));
    }
    CheckIntersectKernel(small, big);
    CheckIntersectKernel(big, small);  // Kernel swaps internally.
  }
}

TEST(TidSetGalloping, ExtremeSkewAndBoundaries) {
  const TidList big = EveryKth(1u << 14, 1, 0);
  CheckIntersectKernel(TidList{0}, big);                // First element.
  CheckIntersectKernel(TidList{(1u << 14) - 1}, big);   // Last element.
  CheckIntersectKernel(TidList{1u << 14}, big);         // Past the end.
  CheckIntersectKernel(TidList{}, big);                 // Empty short side.
  CheckIntersectKernel(TidList{5, 100, 16000}, big);
}

TEST(TidSetGalloping, SubsetKernelAgreesAcrossTheSkewCrossover) {
  const std::size_t universe = 1u << 15;
  const TidList big = EveryKth(universe, 2, 0);
  const std::size_t ratio = tidset_internal::kGallopSkewRatio;
  for (const std::size_t small_size :
       {big.size() / ratio - 1, big.size() / ratio, big.size() / ratio + 1}) {
    TidList inside, outside;
    for (std::size_t i = 0; i < small_size; ++i) {
      inside.push_back(static_cast<Tid>(2 * i * (big.size() / small_size)));
      outside.push_back(static_cast<Tid>(2 * i + (i == small_size / 2)));
    }
    SCOPED_TRACE(small_size);
    EXPECT_TRUE(tidset_internal::SubsetSorted(inside.data(), inside.size(),
                                              big.data(), big.size()));
    EXPECT_FALSE(tidset_internal::SubsetSorted(outside.data(), outside.size(),
                                               big.data(), big.size()));
    EXPECT_EQ(tidset_internal::SubsetSorted(inside.data(), inside.size(),
                                            big.data(), big.size()),
              std::includes(big.begin(), big.end(), inside.begin(),
                            inside.end()));
  }
}

TEST(TidSet, GallopingPathReachedThroughTidSetOps) {
  // End-to-end through the TidSet API with a >=32x size skew, both
  // operands sparse so the galloping kernel is the one that runs.
  const std::size_t universe = 1u << 16;
  const TidList big_tids = EveryKth(universe, 4, 0);
  const TidList small_tids = {0, 3, 4, 4096, 4097, 65532};
  ASSERT_GE(big_tids.size(),
            small_tids.size() * tidset_internal::kGallopSkewRatio);
  const TidSet big(big_tids, universe, Forced(TidSetMode::kSparse));
  const TidSet small(small_tids, universe, Forced(TidSetMode::kSparse));
  EXPECT_EQ(Intersect(small, big), IntersectTids(small_tids, big_tids));
  EXPECT_EQ(IntersectSize(big, small),
            IntersectTids(small_tids, big_tids).size());
  EXPECT_FALSE(IsSubsetOf(small, big));
  EXPECT_TRUE(IsSubsetOf(
      TidSet(TidList{0, 4, 4096, 65532}, universe, Forced(TidSetMode::kSparse)),
      big));
}

}  // namespace
}  // namespace pfci
