// Tests for the top-k PFCI miner extension.
#include "src/core/topk_miner.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/mine.h"
#include "src/harness/dataset_factory.h"
#include "src/util/random.h"

namespace pfci {
namespace {

MiningParams BaseParams(std::size_t min_sup) {
  MiningParams params;
  params.min_sup = min_sup;
  params.pfct = 0.0;
  params.exact_event_limit = 25;
  return params;
}

// Top-k runs go through the Mine() front door (the MineTopKPfci free
// function is deprecated; its parity is pinned by api_contract_test).
MiningResult MineTopK(const UncertainDatabase& db, const MiningParams& params,
                      std::size_t k) {
  MiningRequest request;
  request.algorithm = Algorithm::kTopK;
  request.params = params;
  request.top_k = k;
  return Mine(db, request);
}

TEST(TopkMiner, PaperExampleTopTwo) {
  const UncertainDatabase db = MakePaperExampleDb();
  const MiningResult result = MineTopK(db, BaseParams(2), 2);
  ASSERT_EQ(result.itemsets.size(), 2u);
  // Descending FCP: {abc} 0.8754, then {abcd} 0.81.
  EXPECT_EQ(result.itemsets[0].items, (Itemset{0, 1, 2}));
  EXPECT_NEAR(result.itemsets[0].fcp, 0.8754, 1e-9);
  EXPECT_EQ(result.itemsets[1].items, (Itemset{0, 1, 2, 3}));
  EXPECT_NEAR(result.itemsets[1].fcp, 0.81, 1e-9);
}

TEST(TopkMiner, KLargerThanAnswerReturnsAll) {
  const UncertainDatabase db = MakePaperExampleDb();
  const MiningResult result = MineTopK(db, BaseParams(2), 50);
  // Only two itemsets have positive FCP at min_sup 2.
  EXPECT_EQ(result.itemsets.size(), 2u);
}

TEST(TopkMiner, FloorThresholdRespected) {
  const UncertainDatabase db = MakePaperExampleDb();
  MiningParams params = BaseParams(2);
  params.pfct = 0.85;  // Only {abc} exceeds this.
  const MiningResult result = MineTopK(db, params, 5);
  ASSERT_EQ(result.itemsets.size(), 1u);
  EXPECT_EQ(result.itemsets[0].items, (Itemset{0, 1, 2}));
}

TEST(TopkMiner, MatchesBruteForceRankingOnRandomDbs) {
  Rng rng(2468);
  for (int trial = 0; trial < 12; ++trial) {
    UncertainDatabase db;
    const std::size_t n = 6 + rng.NextBelow(4);
    for (std::size_t t = 0; t < n; ++t) {
      std::vector<Item> items;
      for (Item i = 0; i < 5; ++i) {
        if (rng.NextBernoulli(0.55)) items.push_back(i);
      }
      if (items.empty()) items.push_back(0);
      db.Add(Itemset(std::move(items)), 0.1 + 0.9 * rng.NextDouble());
    }
    const std::size_t min_sup = 1 + rng.NextBelow(2);
    const std::size_t k = 1 + rng.NextBelow(4);

    std::vector<FcpGroundTruth> truth = BruteForceAllFcp(db, min_sup);
    std::sort(truth.begin(), truth.end(),
              [](const FcpGroundTruth& a, const FcpGroundTruth& b) {
                if (a.fcp != b.fcp) return a.fcp > b.fcp;
                return a.items < b.items;
              });

    const MiningResult result = MineTopK(db, BaseParams(min_sup), k);
    const std::size_t expected = std::min(k, truth.size());
    ASSERT_EQ(result.itemsets.size(), expected) << "trial=" << trial;
    for (std::size_t i = 0; i < expected; ++i) {
      // FCP values must match the i-th best exactly (ties may permute the
      // itemsets, so compare the probability, not the identity).
      EXPECT_NEAR(result.itemsets[i].fcp, truth[i].fcp, 1e-9)
          << "trial=" << trial << " i=" << i;
    }
  }
}

// Two itemsets with *bit-identical* FCP straddling the k boundary:
// PrFC({0}) = P(T1) = 0.5 and PrFC({0,1}) = P(T2) = 0.5 exactly in IEEE
// arithmetic. The DFS emits in post-order, so {0,1} arrives at the heap
// before the lexicographically smaller {0}; the k-boundary tie-break must
// still pick the itemset the final sort ranks first.
UncertainDatabase MakeTieDb() {
  UncertainDatabase db;
  db.Add(Itemset{0}, 0.5);
  db.Add(Itemset{0, 1}, 0.5);
  return db;
}

TEST(TopkMiner, ExactTieAtKBoundaryPicksLexSmallerItemset) {
  const UncertainDatabase db = MakeTieDb();
  const MiningResult result = MineTopK(db, BaseParams(1), 1);
  ASSERT_EQ(result.itemsets.size(), 1u);
  EXPECT_EQ(result.itemsets[0].items, (Itemset{0}))
      << "k-boundary tie must resolve by itemset order, not arrival order";
  EXPECT_NEAR(result.itemsets[0].fcp, 0.5, 1e-12);
}

TEST(TopkMiner, ExactTieWithRoomForBothKeepsBothRanked) {
  const UncertainDatabase db = MakeTieDb();
  const MiningResult result = MineTopK(db, BaseParams(1), 2);
  ASSERT_EQ(result.itemsets.size(), 2u);
  EXPECT_EQ(result.itemsets[0].items, (Itemset{0}));
  EXPECT_EQ(result.itemsets[1].items, (Itemset{0, 1}));
  EXPECT_EQ(result.itemsets[0].fcp, result.itemsets[1].fcp);
}

TEST(TopkMiner, TieBreakInvariantUnderItemRelabeling) {
  // Mirror database: the same structure with the singleton now being the
  // lexicographically *larger* branch ({1} vs {0,1}); the boundary entry
  // must again be the lex-smaller itemset regardless of DFS order.
  UncertainDatabase db;
  db.Add(Itemset{1}, 0.5);
  db.Add(Itemset{0, 1}, 0.5);
  const MiningResult result = MineTopK(db, BaseParams(1), 1);
  ASSERT_EQ(result.itemsets.size(), 1u);
  EXPECT_EQ(result.itemsets[0].items, (Itemset{0, 1}));
}

TEST(TopkMiner, KZeroIsRejected) {
  const UncertainDatabase db = MakeTieDb();
  // Through Mine(), k = 0 is error-as-data; the deprecated free function
  // keeps the historical CHECK (covered by api_contract_test).
  const MiningResult result = MineTopK(db, BaseParams(1), 0);
  EXPECT_EQ(result.outcome(), Outcome::kInvalidRequest);
  EXPECT_NE(result.status_message.find("top_k must be >= 1"),
            std::string::npos)
      << result.status_message;
  EXPECT_TRUE(result.itemsets.empty());
}

TEST(TopkMiner, ConsistentWithThresholdMiner) {
  const UncertainDatabase db = MakeUncertainQuest(BenchScale::kQuick);
  MiningParams params = BaseParams(AbsoluteMinSup(db.size(), 0.3));
  params.pfct = 0.8;
  MiningRequest threshold_request;
  threshold_request.algorithm = Algorithm::kMpfci;
  threshold_request.params = params;
  const MiningResult threshold_result = Mine(db, threshold_request);
  const std::size_t k = threshold_result.itemsets.size();
  ASSERT_GT(k, 0u);
  // Top-k with floor 0.8 returns exactly the threshold answer, ranked.
  const MiningResult topk = MineTopK(db, params, k + 10);
  ASSERT_EQ(topk.itemsets.size(), k);
  for (const PfciEntry& entry : topk.itemsets) {
    EXPECT_NE(threshold_result.Find(entry.items), nullptr)
        << entry.items.ToString();
  }
  // Ranked descending.
  for (std::size_t i = 1; i < topk.itemsets.size(); ++i) {
    EXPECT_GE(topk.itemsets[i - 1].fcp + 1e-12, topk.itemsets[i].fcp);
  }
}

}  // namespace
}  // namespace pfci
