// Tests for the Poisson-binomial tail approximations and the approximate
// PFI mining mode ([3]-style acceleration).
#include "src/prob/tail_approximations.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/pfi_miner.h"
#include "src/harness/dataset_factory.h"
#include "src/prob/poisson_binomial.h"
#include "src/util/random.h"

namespace pfci {
namespace {

TEST(StdNormal, KnownValues) {
  EXPECT_NEAR(StdNormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(StdNormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(StdNormalCdf(-1.959963985), 0.025, 1e-6);
}

TEST(TailApproximations, EdgeThresholds) {
  const std::vector<double> probs = {0.3, 0.5, 0.7};
  for (FrequencyMode mode :
       {FrequencyMode::kNormal, FrequencyMode::kRefinedNormal,
        FrequencyMode::kPoisson}) {
    EXPECT_DOUBLE_EQ(TailAtLeastWithMode(probs, 0, mode), 1.0)
        << FrequencyModeName(mode);
    if (mode != FrequencyMode::kPoisson) {
      // A Poisson variable is unbounded; the normal approximations clamp
      // beyond n.
      EXPECT_DOUBLE_EQ(TailAtLeastWithMode(probs, 4, mode), 0.0);
    }
  }
}

TEST(TailApproximations, DegenerateAllCertain) {
  const std::vector<double> probs = {1.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(NormalTailAtLeast(probs, 2), 1.0);
  EXPECT_DOUBLE_EQ(NormalTailAtLeast(probs, 3), 0.0);
  EXPECT_DOUBLE_EQ(RefinedNormalTailAtLeast(probs, 2), 1.0);
}

TEST(PoissonTail, MatchesClosedFormSmallMu) {
  // Poisson(1): Pr{ >= 1 } = 1 - e^-1; Pr{ >= 2 } = 1 - 2 e^-1.
  const std::vector<double> probs = {0.5, 0.5};  // mu = 1.
  EXPECT_NEAR(PoissonTailAtLeast(probs, 1), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(PoissonTailAtLeast(probs, 2), 1.0 - 2.0 * std::exp(-1.0),
              1e-12);
}

class ApproximationAccuracy : public ::testing::TestWithParam<int> {};

TEST_P(ApproximationAccuracy, NormalWithinClassicalErrorOnLargeN) {
  // Berry-Esseen regime: for n = 400 moderate-p Bernoullis the continuity
  // corrected normal approximation is within ~1.5% everywhere.
  Rng rng(GetParam() * 7 + 1);
  const std::size_t n = 400;
  std::vector<double> probs(n);
  for (double& p : probs) p = 0.2 + 0.6 * rng.NextDouble();
  const double mu = PoissonBinomialMean(probs);
  for (double offset : {-20.0, -5.0, 0.0, 5.0, 20.0}) {
    const std::size_t threshold =
        static_cast<std::size_t>(std::max(1.0, mu + offset));
    const double exact = PoissonBinomialTailAtLeast(probs, threshold);
    EXPECT_NEAR(NormalTailAtLeast(probs, threshold), exact, 0.015)
        << "threshold=" << threshold;
    // The skew-corrected version must not be (meaningfully) worse.
    EXPECT_NEAR(RefinedNormalTailAtLeast(probs, threshold), exact, 0.015);
  }
}

TEST_P(ApproximationAccuracy, PoissonAccurateInSparseRegime) {
  // Le Cam: total variation error <= 2 sum p_i^2; with p_i ~ 0.02 over
  // n = 300 that is <= 0.24%... use the bound itself as the tolerance.
  Rng rng(GetParam() * 13 + 2);
  const std::size_t n = 300;
  std::vector<double> probs(n);
  double le_cam = 0.0;
  for (double& p : probs) {
    p = 0.04 * rng.NextDouble();
    le_cam += 2.0 * p * p;
  }
  for (std::size_t threshold : {1, 3, 6, 10}) {
    const double exact = PoissonBinomialTailAtLeast(probs, threshold);
    EXPECT_NEAR(PoissonTailAtLeast(probs, threshold), exact, le_cam + 1e-6)
        << "threshold=" << threshold;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproximationAccuracy,
                         ::testing::Range(0, 10));

TEST(ApproximatePfiMiner, ExactModeReproducesMinePfi) {
  const UncertainDatabase db = MakePaperExampleDb();
  const auto exact = MinePfi(db, 2, 0.8);
  const auto via_mode =
      MinePfiApproximate(db, 2, 0.8, FrequencyMode::kExactDp);
  ASSERT_EQ(via_mode.size(), exact.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(via_mode[i].items, exact[i].items);
    EXPECT_DOUBLE_EQ(via_mode[i].pr_f, exact[i].pr_f);
  }
}

TEST(ApproximatePfiMiner, NormalModeNearExactAtScale) {
  const UncertainDatabase db = MakeUncertainQuest(BenchScale::kQuick);
  const std::size_t min_sup = AbsoluteMinSup(db.size(), 0.2);
  const auto exact = MinePfi(db, min_sup, 0.8);
  const auto approx =
      MinePfiApproximate(db, min_sup, 0.8, FrequencyMode::kNormal);
  // The symmetric difference must be a small fraction of the answer: only
  // borderline itemsets (PrF within the CLT error of 0.8) can flip.
  std::size_t common = 0;
  std::size_t ia = 0, ib = 0;
  while (ia < exact.size() && ib < approx.size()) {
    if (exact[ia].items < approx[ib].items) {
      ++ia;
    } else if (approx[ib].items < exact[ia].items) {
      ++ib;
    } else {
      ++common;
      ++ia;
      ++ib;
    }
  }
  const std::size_t sym_diff =
      (exact.size() - common) + (approx.size() - common);
  EXPECT_LE(sym_diff,
            1 + exact.size() / 20)  // <= ~5% of the answer.
      << "exact=" << exact.size() << " approx=" << approx.size();
}

}  // namespace
}  // namespace pfci
