// Telemetry layer: the trace event stream of a mining run is part of the
// public surface (docs/FORMATS.md). This test pins the golden event
// sequence for an MPFCI run on the paper's example, checks counter values
// against MiningStats, and validates the JSONL sink against the schema
// (wall-clock fields masked, everything else exact).
#include "src/util/trace.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/mine.h"
#include "src/harness/dataset_factory.h"

namespace pfci {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

MiningRequest PaperRequest() {
  MiningRequest request;
  request.params.min_sup = 2;
  request.params.pfct = 0.8;
  request.params.exact_event_limit = 25;
  return request;
}

/// The golden (kind, name) sequence of one MPFCI run. Counter order is
/// MiningStats::EmitTrace order; spans are one per phase.
struct ExpectedEvent {
  TraceEvent::Kind kind;
  const char* name;
};

const ExpectedEvent kMpfciGolden[] = {
    {TraceEvent::Kind::kRunBegin, "mpfci"},
    {TraceEvent::Kind::kSpan, "candidate_build"},
    {TraceEvent::Kind::kSpan, "dfs"},
    {TraceEvent::Kind::kSpan, "merge"},
    {TraceEvent::Kind::kCounter, "nodes_expanded"},
    {TraceEvent::Kind::kCounter, "chernoff_pruned"},
    {TraceEvent::Kind::kCounter, "threshold_pruned"},
    {TraceEvent::Kind::kCounter, "superset_pruned"},
    {TraceEvent::Kind::kCounter, "subset_pruned"},
    {TraceEvent::Kind::kCounter, "bounds_decided"},
    {TraceEvent::Kind::kCounter, "zero_by_count"},
    {TraceEvent::Kind::kCounter, "exact_fcp"},
    {TraceEvent::Kind::kCounter, "sampled_fcp"},
    {TraceEvent::Kind::kCounter, "samples_drawn"},
    {TraceEvent::Kind::kCounter, "dp_runs"},
    {TraceEvent::Kind::kCounter, "intersections"},
    {TraceEvent::Kind::kCounter, "degraded_fcp_evals"},
    {TraceEvent::Kind::kCounter, "truncated"},
    {TraceEvent::Kind::kRunEnd, "mpfci"},
};

TEST(Trace, MpfciEventSequenceMatchesGolden) {
  const UncertainDatabase db = MakePaperExampleDb();
  MiningRequest request = PaperRequest();
  MemoryTraceSink sink;
  request.trace = &sink;
  const MiningResult result = Mine(db, request);
  ASSERT_EQ(result.itemsets.size(), 2u);

  const std::vector<TraceEvent> events = sink.TakeSnapshot();
  ASSERT_EQ(events.size(), std::size(kMpfciGolden));
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].kind, kMpfciGolden[i].kind) << "event " << i;
    EXPECT_EQ(events[i].name, kMpfciGolden[i].name) << "event " << i;
  }
}

TEST(Trace, CounterValuesMatchMiningStats) {
  const UncertainDatabase db = MakePaperExampleDb();
  MiningRequest request = PaperRequest();
  MemoryTraceSink sink;
  request.trace = &sink;
  const MiningResult result = Mine(db, request);

  const auto counter = [&sink](const std::string& name) -> std::uint64_t {
    for (const TraceEvent& event : sink.TakeSnapshot()) {
      if (event.kind == TraceEvent::Kind::kCounter && event.name == name) {
        return event.value;
      }
    }
    ADD_FAILURE() << "counter '" << name << "' not emitted";
    return ~std::uint64_t{0};
  };
  const MiningStats& stats = result.stats;
  EXPECT_EQ(counter("nodes_expanded"), stats.nodes_visited);
  EXPECT_EQ(counter("chernoff_pruned"), stats.pruned_by_chernoff);
  EXPECT_EQ(counter("threshold_pruned"), stats.pruned_by_frequency);
  EXPECT_EQ(counter("superset_pruned"), stats.pruned_by_superset);
  EXPECT_EQ(counter("subset_pruned"), stats.pruned_by_subset);
  EXPECT_EQ(counter("bounds_decided"), stats.decided_by_bounds);
  EXPECT_EQ(counter("zero_by_count"), stats.zero_by_count);
  EXPECT_EQ(counter("exact_fcp"), stats.exact_fcp_computations);
  EXPECT_EQ(counter("sampled_fcp"), stats.sampled_fcp_computations);
  EXPECT_EQ(counter("samples_drawn"), stats.total_samples);
  EXPECT_EQ(counter("dp_runs"), stats.dp_runs);
  EXPECT_EQ(counter("intersections"), stats.intersections);
  EXPECT_EQ(counter("degraded_fcp_evals"), stats.degraded_fcp_evals);
  EXPECT_EQ(counter("truncated"), stats.truncated ? 1u : 0u);

  // The run_end marker carries the result size and total wall time.
  const std::vector<TraceEvent> events = sink.TakeSnapshot();
  const TraceEvent& run_end = events.back();
  ASSERT_EQ(run_end.kind, TraceEvent::Kind::kRunEnd);
  EXPECT_EQ(run_end.value, result.itemsets.size());
  EXPECT_EQ(run_end.seconds, stats.seconds);
}

/// Replaces every JSON number after "seconds": with a fixed placeholder so
/// wall-clock noise cannot fail the golden comparison.
std::string MaskSeconds(const std::string& line) {
  static const std::regex kSeconds("\"seconds\":[-+0-9.eE]+");
  return std::regex_replace(line, kSeconds, "\"seconds\":<t>");
}

TEST(Trace, JsonLinesFileMatchesGolden) {
  const UncertainDatabase db = MakePaperExampleDb();
  const std::string path = TempPath("pfci_trace_test.jsonl");
  MiningRequest request = PaperRequest();
  MiningResult result;
  {
    JsonLinesTraceSink sink(path);
    ASSERT_TRUE(sink.ok());
    request.trace = &sink;
    result = Mine(db, request);
  }

  std::ifstream in(path);
  ASSERT_TRUE(in);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(MaskSeconds(line));

  const std::vector<std::string> golden = {
      R"({"type":"run_begin","name":"mpfci"})",
      R"({"type":"span","name":"candidate_build","seconds":<t>})",
      R"({"type":"span","name":"dfs","seconds":<t>})",
      R"({"type":"span","name":"merge","seconds":<t>})",
      "{\"type\":\"counter\",\"name\":\"nodes_expanded\",\"value\":" +
          std::to_string(result.stats.nodes_visited) + "}",
      "{\"type\":\"counter\",\"name\":\"chernoff_pruned\",\"value\":" +
          std::to_string(result.stats.pruned_by_chernoff) + "}",
      "{\"type\":\"counter\",\"name\":\"threshold_pruned\",\"value\":" +
          std::to_string(result.stats.pruned_by_frequency) + "}",
      "{\"type\":\"counter\",\"name\":\"superset_pruned\",\"value\":" +
          std::to_string(result.stats.pruned_by_superset) + "}",
      "{\"type\":\"counter\",\"name\":\"subset_pruned\",\"value\":" +
          std::to_string(result.stats.pruned_by_subset) + "}",
      "{\"type\":\"counter\",\"name\":\"bounds_decided\",\"value\":" +
          std::to_string(result.stats.decided_by_bounds) + "}",
      "{\"type\":\"counter\",\"name\":\"zero_by_count\",\"value\":" +
          std::to_string(result.stats.zero_by_count) + "}",
      "{\"type\":\"counter\",\"name\":\"exact_fcp\",\"value\":" +
          std::to_string(result.stats.exact_fcp_computations) + "}",
      "{\"type\":\"counter\",\"name\":\"sampled_fcp\",\"value\":" +
          std::to_string(result.stats.sampled_fcp_computations) + "}",
      "{\"type\":\"counter\",\"name\":\"samples_drawn\",\"value\":" +
          std::to_string(result.stats.total_samples) + "}",
      "{\"type\":\"counter\",\"name\":\"dp_runs\",\"value\":" +
          std::to_string(result.stats.dp_runs) + "}",
      "{\"type\":\"counter\",\"name\":\"intersections\",\"value\":" +
          std::to_string(result.stats.intersections) + "}",
      "{\"type\":\"counter\",\"name\":\"degraded_fcp_evals\",\"value\":" +
          std::to_string(result.stats.degraded_fcp_evals) + "}",
      R"({"type":"counter","name":"truncated","value":0})",
      R"({"type":"run_end","name":"mpfci","value":2,"seconds":<t>})",
  };
  ASSERT_EQ(lines.size(), golden.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i], golden[i]) << "line " << i;
  }
  std::remove(path.c_str());
}

TEST(Trace, TracedRunMatchesUntracedRunExactly) {
  // Tracing must be observation only: with a sink, a NullTraceSink, or no
  // sink at all, the mined itemsets and counters are bit-identical.
  const UncertainDatabase db = MakePaperExampleDb();
  MiningRequest untraced = PaperRequest();
  const MiningResult base = Mine(db, untraced);

  MemoryTraceSink memory;
  NullTraceSink null;
  for (TraceSink* sink : {static_cast<TraceSink*>(&memory),
                          static_cast<TraceSink*>(&null)}) {
    MiningRequest request = PaperRequest();
    request.trace = sink;
    const MiningResult traced = Mine(db, request);
    ASSERT_EQ(traced.itemsets.size(), base.itemsets.size());
    for (std::size_t i = 0; i < base.itemsets.size(); ++i) {
      EXPECT_EQ(traced.itemsets[i].items, base.itemsets[i].items);
      EXPECT_EQ(traced.itemsets[i].fcp, base.itemsets[i].fcp);
      EXPECT_EQ(traced.itemsets[i].pr_f, base.itemsets[i].pr_f);
    }
    EXPECT_EQ(traced.stats.nodes_visited, base.stats.nodes_visited);
    EXPECT_EQ(traced.stats.intersections, base.stats.intersections);
    EXPECT_EQ(traced.stats.dp_runs, base.stats.dp_runs);
  }
}

TEST(Trace, CountersIdenticalAcrossThreadCountsAndAlgorithms) {
  const UncertainDatabase db = MakePaperExampleDb();
  for (const Algorithm algorithm :
       {Algorithm::kMpfci, Algorithm::kMpfciBfs, Algorithm::kNaive}) {
    MemoryTraceSink base_sink;
    MiningRequest request = PaperRequest();
    request.algorithm = algorithm;
    request.trace = &base_sink;
    request.execution.num_threads = 1;
    Mine(db, request);
    const std::vector<TraceEvent> base = base_sink.TakeSnapshot();

    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
      MemoryTraceSink sink;
      request.trace = &sink;
      request.execution.num_threads = threads;
      Mine(db, request);
      const std::vector<TraceEvent> events = sink.TakeSnapshot();
      ASSERT_EQ(events.size(), base.size());
      for (std::size_t i = 0; i < events.size(); ++i) {
        SCOPED_TRACE(std::string(AlgorithmName(algorithm)) + " threads=" +
                     std::to_string(threads) + " event=" +
                     std::to_string(i));
        EXPECT_EQ(events[i].kind, base[i].kind);
        EXPECT_EQ(events[i].name, base[i].name);
        if (events[i].kind == TraceEvent::Kind::kCounter) {
          EXPECT_EQ(events[i].value, base[i].value);
        }
      }
    }
  }
}

TEST(Trace, SpanWritesDurationWithoutSink) {
  double seconds = -1.0;
  {
    TraceSpan span(nullptr, "phase", &seconds);
  }
  EXPECT_GE(seconds, 0.0);
}

TEST(Trace, SpanEndIsIdempotent) {
  MemoryTraceSink sink;
  {
    TraceSpan span(&sink, "phase");
    span.End();
    span.End();
  }
  EXPECT_EQ(sink.TakeSnapshot().size(), 1u);
}

TEST(Trace, EventToJsonShapes) {
  TraceEvent counter;
  counter.kind = TraceEvent::Kind::kCounter;
  counter.name = "dp_runs";
  counter.value = 7;
  EXPECT_EQ(TraceEventToJson(counter),
            R"({"type":"counter","name":"dp_runs","value":7})");

  TraceEvent span;
  span.kind = TraceEvent::Kind::kSpan;
  span.name = "dfs";
  span.seconds = 0.25;
  EXPECT_EQ(TraceEventToJson(span),
            R"({"type":"span","name":"dfs","seconds":0.25})");

  TraceEvent begin;
  begin.kind = TraceEvent::Kind::kRunBegin;
  begin.name = "mpfci";
  EXPECT_EQ(TraceEventToJson(begin),
            R"({"type":"run_begin","name":"mpfci"})");
}

TEST(Trace, StatsJsonIsSchemaV6) {
  MiningStats stats;
  stats.nodes_visited = 3;
  stats.candidate_seconds = 0.5;
  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"schema\":6"), std::string::npos) << json;
  EXPECT_NE(json.find("\"nodes_visited\":3"), std::string::npos) << json;
  // Schema v4: session-cache counters (all zero outside a session).
  EXPECT_NE(json.find("\"cache_hits\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache_misses\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dp_reused\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache_bytes\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"candidate_seconds\":0.5"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"search_seconds\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"merge_seconds\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"degraded_fcp_evals\":0"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"outcome\":\"complete\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"truncated\":false"), std::string::npos) << json;
  // Schema v5: checkpoint/resume accounting.
  EXPECT_NE(json.find("\"snapshot_bytes\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"resumed\":false"), std::string::npos) << json;
  // Schema v6: batch execution accounting (all zero outside a batch).
  EXPECT_NE(json.find("\"batch_size\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"batch_groups\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shared_dp_hits\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"queued_micros\":0"), std::string::npos) << json;

  stats.outcome = Outcome::kDeadlineExceeded;
  stats.truncated = true;
  const std::string stopped = stats.ToJson();
  EXPECT_NE(stopped.find("\"outcome\":\"deadline_exceeded\""),
            std::string::npos)
      << stopped;
  EXPECT_NE(stopped.find("\"truncated\":true"), std::string::npos)
      << stopped;
}

}  // namespace
}  // namespace pfci
