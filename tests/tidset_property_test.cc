// Randomized cross-validation of the TidSet algebra against the plain
// sorted-vector reference (src/data/tidlist.cc) over seeded random
// universes: sparse, dense, and densities straddling the adaptive
// threshold, in every representation pairing.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "src/data/tidlist.h"
#include "src/data/tidset.h"
#include "src/util/random.h"

namespace pfci {
namespace {

TidSetPolicy Forced(TidSetMode mode) {
  TidSetPolicy policy;
  policy.mode = mode;
  return policy;
}

TidList RandomTids(std::size_t universe, double density, Rng& rng) {
  TidList tids;
  for (Tid t = 0; t < universe; ++t) {
    if (rng.NextBernoulli(density)) tids.push_back(t);
  }
  return tids;
}

constexpr TidSetMode kModes[] = {TidSetMode::kAdaptive, TidSetMode::kSparse,
                                 TidSetMode::kDense};

/// Checks every TidSet operation of (a, b) against the vector reference,
/// in all nine representation pairings.
void CrossValidate(const TidList& a_tids, const TidList& b_tids,
                   std::size_t universe) {
  const TidList ref_inter = IntersectTids(a_tids, b_tids);
  const TidList ref_diff = DifferenceTids(a_tids, b_tids);
  const bool ref_subset = TidsSubset(a_tids, b_tids);
  for (const TidSetMode ma : kModes) {
    const TidSet a(a_tids, universe, Forced(ma));
    ASSERT_EQ(a, a_tids) << "construction roundtrip";
    ASSERT_EQ(a.size(), a_tids.size());
    for (const TidSetMode mb : kModes) {
      SCOPED_TRACE(std::string(TidSetModeName(ma)) + " x " +
                   TidSetModeName(mb) + " universe=" +
                   std::to_string(universe) + " |a|=" +
                   std::to_string(a_tids.size()) + " |b|=" +
                   std::to_string(b_tids.size()));
      const TidSet b(b_tids, universe, Forced(mb));
      EXPECT_EQ(Intersect(a, b), ref_inter);
      EXPECT_EQ(IntersectSize(a, b), ref_inter.size());
      EXPECT_EQ(Difference(a, b), ref_diff);
      EXPECT_EQ(IsSubsetOf(a, b), ref_subset);
      EXPECT_EQ(a == b, a_tids == b_tids);
    }
  }
}

TEST(TidSetProperty, RandomPairsAcrossDensitiesAndUniverses) {
  // Densities: very sparse, around the 1/16 adaptive boundary, dense,
  // near-full. Universes include a sub-word one, a non-multiple of 64,
  // and larger power/non-power sizes.
  const std::size_t universes[] = {64, 257, 1024, 4096};
  const double densities[] = {0.005, 0.05, 1.0 / 16.0, 0.08, 0.5, 0.95};
  Rng rng(20260806);
  for (const std::size_t universe : universes) {
    for (const double da : densities) {
      for (const double db : densities) {
        CrossValidate(RandomTids(universe, da, rng),
                      RandomTids(universe, db, rng), universe);
      }
    }
  }
}

TEST(TidSetProperty, NestedAndDisjointPairs) {
  Rng rng(99);
  const std::size_t universe = 2048;
  for (int round = 0; round < 8; ++round) {
    const TidList b = RandomTids(universe, 0.3, rng);
    // a ⊂ b: thin out b.
    TidList a;
    for (Tid t : b) {
      if (rng.NextBernoulli(0.4)) a.push_back(t);
    }
    CrossValidate(a, b, universe);
    // Disjoint: the complement-sampled side.
    TidList c;
    for (Tid t = 0; t < universe; ++t) {
      if (!TidsSubset({t}, b) && rng.NextBernoulli(0.2)) c.push_back(t);
    }
    CrossValidate(c, b, universe);
    // Self and empty.
    CrossValidate(b, b, universe);
    CrossValidate(TidList{}, b, universe);
    CrossValidate(b, TidList{}, universe);
  }
}

TEST(TidSetProperty, HeavySkewTriggersGalloping) {
  // One side >= 32x shorter: exercises the galloping sparse kernels
  // through the public API against the same reference.
  Rng rng(7);
  const std::size_t universe = 1 << 15;
  const TidList big = RandomTids(universe, 0.5, rng);
  for (int round = 0; round < 6; ++round) {
    const TidList small = RandomTids(universe, 0.003, rng);
    ASSERT_LE(small.size() * 32, big.size());
    CrossValidate(small, big, universe);
    CrossValidate(big, small, universe);
  }
}

TEST(TidSetProperty, CountMatchesPopcountAcrossBoundaries) {
  // Sizes around word boundaries: the dense popcount bookkeeping must
  // agree with the vector size everywhere.
  for (const std::size_t universe : {63u, 64u, 65u, 127u, 128u, 129u}) {
    Rng rng(universe);
    for (int round = 0; round < 4; ++round) {
      const TidList tids = RandomTids(universe, 0.6, rng);
      const TidSet dense(tids, universe, Forced(TidSetMode::kDense));
      const TidSet sparse(tids, universe, Forced(TidSetMode::kSparse));
      EXPECT_EQ(dense.size(), tids.size());
      EXPECT_EQ(dense.ToTidList(), tids);
      EXPECT_EQ(dense, sparse);
      EXPECT_EQ(IntersectSize(dense, sparse), tids.size());
    }
  }
}

}  // namespace
}  // namespace pfci
