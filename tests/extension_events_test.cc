// Unit tests for the extension events C_i and their intersection
// probabilities (the DNF factorization of Sec. IV.B.1).
#include "src/core/extension_events.h"

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/data/world_enumerator.h"
#include "src/harness/dataset_factory.h"
#include "src/util/random.h"

namespace pfci {
namespace {

/// Exact Pr(C_i for all i in S) by world enumeration: every present
/// transaction containing X also contains all of S's items, and the
/// support of X ∪ S reaches min_sup.
double BruteForceIntersection(const UncertainDatabase& db, const Itemset& x,
                              const std::vector<Item>& extension,
                              std::size_t min_sup) {
  double total = 0.0;
  Itemset extended = x;
  for (Item e : extension) extended = extended.WithItem(e);
  EnumerateWorlds(db, [&](const PossibleWorld& world, double prob) {
    // Every present transaction containing X must contain the extension.
    for (Tid tid = 0; tid < db.size(); ++tid) {
      if (!world.IsPresent(tid)) continue;
      const Itemset& t = db.transaction(tid).items;
      if (x.IsSubsetOf(t) && !extended.IsSubsetOf(t)) return;
    }
    if (world.Support(db, extended) >= min_sup) total += prob;
  });
  return total;
}

TEST(ExtensionEvents, PaperExampleEventOfAbc) {
  const UncertainDatabase db = MakePaperExampleDb();
  const VerticalIndex index(db);
  const FrequentProbability freq(index, 2);
  const Itemset abc{0, 1, 2};
  const TidSet tids = index.TidsOf(abc);
  const ExtensionEventSet events(index, freq, abc, tids);
  // Only item d (=3) can extend abc.
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events.events()[0].item, 3u);
  // Pr(C_d) = (1-.6)(1-.7) * Pr{PB(.9,.9) >= 2} = .12 * .81 = .0972.
  EXPECT_NEAR(events.PrSingle(0), 0.0972, 1e-12);
  EXPECT_FALSE(events.HasSameCountExtension());
}

TEST(ExtensionEvents, SameCountExtensionDetected) {
  const UncertainDatabase db = MakePaperExampleDb();
  const VerticalIndex index(db);
  const FrequentProbability freq(index, 2);
  // {a,b}: item c occurs in every transaction containing ab.
  const Itemset ab{0, 1};
  const TidSet tids = index.TidsOf(ab);
  const ExtensionEventSet events(index, freq, ab, tids);
  EXPECT_TRUE(events.HasSameCountExtension());
}

TEST(ExtensionEvents, CertainTransactionKillsEvent) {
  // A p=1 transaction containing X but not X+e makes C_e impossible.
  UncertainDatabase db;
  db.Add(Itemset{0, 1}, 0.5);
  db.Add(Itemset{0}, 1.0);  // Contains X={a} but never e=b, and is certain.
  const VerticalIndex index(db);
  const FrequentProbability freq(index, 1);
  const Itemset a{0};
  const TidSet tids = index.TidsOf(a);
  const ExtensionEventSet events(index, freq, a, tids);
  EXPECT_EQ(events.size(), 0u);  // The b-event is impossible.
}

TEST(ExtensionEvents, CountBelowMinSupSkipsEvent) {
  const UncertainDatabase db = MakePaperExampleDb();
  const VerticalIndex index(db);
  const FrequentProbability freq(index, 3);
  // {abc} with min_sup=3: the d-extension has count 2 < 3, impossible.
  const Itemset abc{0, 1, 2};
  const TidSet tids = index.TidsOf(abc);
  const ExtensionEventSet events(index, freq, abc, tids);
  EXPECT_EQ(events.size(), 0u);
}

TEST(ExtensionEvents, IntersectionMatchesBruteForce) {
  Rng rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    UncertainDatabase db;
    const std::size_t n = 5 + rng.NextBelow(5);
    for (std::size_t t = 0; t < n; ++t) {
      std::vector<Item> items;
      for (Item i = 0; i < 5; ++i) {
        if (rng.NextBernoulli(0.6)) items.push_back(i);
      }
      if (items.empty()) items.push_back(0);
      db.Add(Itemset(std::move(items)), 0.1 + 0.9 * rng.NextDouble());
    }
    const std::size_t min_sup = 1 + rng.NextBelow(3);
    const VerticalIndex index(db);
    const FrequentProbability freq(index, min_sup);
    const Itemset x{0};
    const TidSet tids = index.TidsOf(x);
    if (tids.empty()) continue;
    const ExtensionEventSet events(index, freq, x, tids);

    // Singles.
    for (std::size_t i = 0; i < events.size(); ++i) {
      const double truth = BruteForceIntersection(
          db, x, {events.events()[i].item}, min_sup);
      EXPECT_NEAR(events.PrSingle(i), truth, 1e-9)
          << "trial=" << trial << " i=" << i;
      EXPECT_NEAR(events.PrIntersection({i}), truth, 1e-9);
    }
    // Pairs.
    for (std::size_t i = 0; i < events.size(); ++i) {
      for (std::size_t j = i + 1; j < events.size(); ++j) {
        const double truth = BruteForceIntersection(
            db, x, {events.events()[i].item, events.events()[j].item},
            min_sup);
        EXPECT_NEAR(events.PrIntersection({i, j}), truth, 1e-9)
            << "trial=" << trial;
      }
    }
    // The pairwise matrix agrees with the individual calls.
    const PairwiseProbabilities pairs = events.BuildPairwise();
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_DOUBLE_EQ(pairs.Get(i, i), events.PrSingle(i));
      for (std::size_t j = i + 1; j < events.size(); ++j) {
        EXPECT_DOUBLE_EQ(pairs.Get(i, j), events.PrIntersection({i, j}));
      }
    }
  }
}

}  // namespace
}  // namespace pfci
