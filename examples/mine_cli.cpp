// Command-line miner: discover probabilistic frequent closed itemsets in
// a `.utd` file (one transaction per line: `prob item item ...`).
//
//   $ ./mine_cli DATA.utd MIN_SUP [PFCT=0.8]
//                [--algo=NAME]   (any AlgorithmName; see --algo=help)
//                [--request=FILE]   (key=value request wire file)
//                [--sweep=min_sup:A,B,C]   (MiningSession threshold sweep)
//                [--threads=N] [--progress] [--top-k=K]
//                [--epsilon=0.1] [--delta=0.1] [--csv=OUT.csv]
//                [--tidset=adaptive|sparse|dense] [--stats-json]
//                [--trace=OUT.jsonl] [--deadline-ms=N] [--max-nodes=N]
//                [--max-samples=N] [--snapshot=FILE] [--resume=FILE]
//                [--max-inflight=N]
//
// With no positional arguments, writes the paper's Table II database to a
// temp file and mines it, as a self-demonstration (flags still apply).
//
// --request loads a serialized MiningRequest (the shared key=value wire
// format of src/core/request_io.h — the same dialect the oracle's
// `.request` repro sidecars use, whose `check` line is ignored). The
// file is applied as a base: explicit positionals and flags override its
// fields, and MIN_SUP becomes optional when the file provides one.
//
// --snapshot writes a crash-consistent resume snapshot when the run stops
// early (deadline/budget); --resume continues a suspended run from such a
// file, bit-identically to an uninterrupted run. --max-inflight caps the
// sweep session's concurrent runs (admission control; excess requests are
// rejected with outcome `rejected`).
//
// Exit codes mirror the run outcome so scripts can tell a complete run
// from a fail-soft partial: 0 complete, 2 invalid request, 3 budget
// exhausted, 4 deadline exceeded, 5 cancelled, 6 rejected by admission
// control (1 stays the generic usage/I-O error). Invalid requests caught
// before the run — e.g. a --sweep list with duplicate or non-ascending
// thresholds — also exit 2.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/core/mine.h"
#include "src/core/mining_result.h"
#include "src/core/request_io.h"
#include "src/serve/mining_session.h"
#include "src/data/database_io.h"
#include "src/data/database_stats.h"
#include "src/harness/dataset_factory.h"
#include "src/util/csv_writer.h"
#include "src/util/runtime.h"
#include "src/util/string_util.h"
#include "src/util/trace.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

/// "mpfci|bfs|naive|..." — every algorithm name, straight off the
/// library's own table, so CLI help can never drift from the enum.
std::string AlgorithmChoices() {
  std::string choices;
  for (pfci::Algorithm algorithm : pfci::AllAlgorithms()) {
    if (!choices.empty()) choices += '|';
    choices += pfci::AlgorithmName(algorithm);
  }
  return choices;
}

/// Parses "--sweep=min_sup:A,B,C" into a list of thresholds. Returns 0
/// on success, 1 on a syntax error (generic usage error), 2 when the
/// thresholds are duplicated or non-ascending — the sweep contract is
/// strictly increasing, and the error names the offending position so
/// a long list is debuggable. The caller exits with the returned code
/// (2 is the documented invalid-request exit).
int ParseSweep(const std::string& value, std::vector<std::size_t>* out) {
  const std::string prefix = "min_sup:";
  if (value.compare(0, prefix.size(), prefix) != 0) {
    std::fprintf(stderr, "bad --sweep '%s' (expected min_sup:A,B,C)\n",
                 value.c_str());
    return 1;
  }
  std::size_t start = prefix.size();
  while (start < value.size()) {
    std::size_t end = value.find(',', start);
    if (end == std::string::npos) end = value.size();
    const std::string token = value.substr(start, end - start);
    unsigned int threshold = 0;
    if (!pfci::ParseUint32(token, &threshold) || threshold == 0) {
      std::fprintf(stderr,
                   "bad --sweep threshold '%s' at position %zu (expected a "
                   "positive integer)\n",
                   token.c_str(), out->size() + 1);
      return 1;
    }
    if (!out->empty() && threshold <= out->back()) {
      std::fprintf(stderr,
                   "bad --sweep: threshold %u at position %zu %s previous "
                   "value %zu (thresholds must be strictly ascending)\n",
                   threshold, out->size() + 1,
                   threshold == out->back() ? "duplicates" : "is below",
                   out->back());
      return 2;
    }
    out->push_back(threshold);
    start = end + 1;
  }
  if (out->empty()) {
    std::fprintf(stderr, "bad --sweep '%s' (no thresholds given)\n",
                 value.c_str());
    return 1;
  }
  return 0;
}

/// Distinct non-zero exit code per fail-soft outcome (documented above).
int ExitCodeFor(pfci::Outcome outcome) {
  switch (outcome) {
    case pfci::Outcome::kComplete:
      return 0;
    case pfci::Outcome::kBudgetExhausted:
      return 3;
    case pfci::Outcome::kDeadlineExceeded:
      return 4;
    case pfci::Outcome::kCancelled:
      return 5;
    case pfci::Outcome::kInvalidRequest:
      return 2;
    case pfci::Outcome::kRejected:
      return 6;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pfci;

  std::string path;
  MiningRequest request;
  request.params.pfct = 0.8;
  bool show_progress = false;
  bool stats_json = false;
  std::string csv_path;
  std::string trace_path;
  SessionOptions session_options;

  // --request is applied before the positional/flag pass so everything
  // explicit on the command line overrides the file's fields.
  std::string request_file;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--request", &value)) request_file = value;
  }
  bool request_file_loaded = false;
  if (!request_file.empty()) {
    std::string error;
    if (!LoadRequestFile(request_file, &request, &error)) {
      std::fprintf(stderr, "failed to load --request file: %s\n",
                   error.c_str());
      return 1;
    }
    request_file_loaded = true;
  }

  // Demo mode: no positional arguments (flags alone are accepted and
  // applied to the paper's Table II example).
  const bool demo = argc < 2 || argv[1][0] == '-';
  int position = 1;
  if (demo) {
    std::printf(
        "usage: %s DATA.utd MIN_SUP [PFCT]"
        " [--algo=%s]\n"
        "       [--request=FILE] [--sweep=min_sup:A,B,C] [--threads=N]"
        " [--progress]\n"
        "       [--top-k=K] [--epsilon=E] [--delta=D] [--csv=OUT.csv]\n"
        "       [--tidset=adaptive|sparse|dense] [--stats-json]"
        " [--trace=OUT.jsonl]\n"
        "       [--deadline-ms=N] [--max-nodes=N] [--max-samples=N]\n"
        "       [--snapshot=FILE] [--resume=FILE] [--max-inflight=N]\n"
        "no input given — demonstrating on the paper's Table II.\n\n",
        argv[0], AlgorithmChoices().c_str());
    path = "/tmp/pfci_demo.utd";
    if (!SaveUncertainDatabase(MakePaperExampleDb(), path)) {
      std::fprintf(stderr, "cannot write demo file %s\n", path.c_str());
      return 1;
    }
    if (!request_file_loaded) request.params.min_sup = 2;
  } else {
    path = argv[1];
    position = 2;
    if (argc > position && argv[position][0] != '-') {
      unsigned int min_sup = 0;
      if (!ParseUint32(argv[position], &min_sup) || min_sup == 0) {
        std::fprintf(stderr, "bad MIN_SUP '%s'\n", argv[position]);
        return 1;
      }
      request.params.min_sup = min_sup;
      ++position;
      if (argc > position && argv[position][0] != '-') {
        double pfct = 0.0;
        if (!ParseDouble(argv[position], &pfct) || pfct < 0.0 || pfct >= 1.0) {
          std::fprintf(stderr, "bad PFCT '%s'\n", argv[position]);
          return 1;
        }
        request.params.pfct = pfct;
        ++position;
      }
    } else if (!request_file_loaded) {
      std::fprintf(stderr,
                   "missing MIN_SUP (run with no arguments for usage)\n");
      return 1;
    }
  }
  {
    for (; position < argc; ++position) {
      std::string value;
      if (ParseFlag(argv[position], "--algo", &value)) {
        // One lookup table serves parsing, help, and display: the flag
        // round-trips through AlgorithmName().
        if (value == "help") {
          std::printf("available algorithms: %s\n",
                      AlgorithmChoices().c_str());
          return 0;
        }
        if (!ParseAlgorithm(value, &request.algorithm)) {
          std::fprintf(stderr, "unknown --algo '%s' (choices: %s)\n",
                       value.c_str(), AlgorithmChoices().c_str());
          return 1;
        }
      } else if (ParseFlag(argv[position], "--request", &value)) {
        // Already applied in the pre-pass (so later flags override it).
      } else if (ParseFlag(argv[position], "--sweep", &value)) {
        const int sweep_error = ParseSweep(value, &request.sweep_min_sup);
        if (sweep_error != 0) return sweep_error;
      } else if (ParseFlag(argv[position], "--threads", &value)) {
        unsigned int threads = 0;
        if (!ParseUint32(value, &threads)) {
          std::fprintf(stderr, "bad --threads '%s'\n", value.c_str());
          return 1;
        }
        request.execution.num_threads = threads;
      } else if (ParseFlag(argv[position], "--top-k", &value)) {
        unsigned int top_k = 0;
        if (!ParseUint32(value, &top_k) || top_k == 0) {
          std::fprintf(stderr, "bad --top-k '%s'\n", value.c_str());
          return 1;
        }
        request.top_k = top_k;
      } else if (ParseFlag(argv[position], "--tidset", &value)) {
        if (!ParseTidSetMode(value.c_str(), &request.params.tidset_mode)) {
          std::fprintf(stderr, "unknown --tidset '%s'\n", value.c_str());
          return 1;
        }
      } else if (std::strcmp(argv[position], "--progress") == 0) {
        show_progress = true;
      } else if (std::strcmp(argv[position], "--stats-json") == 0) {
        stats_json = true;
      } else if (ParseFlag(argv[position], "--epsilon", &value)) {
        if (!ParseDouble(value, &request.params.epsilon)) return 1;
      } else if (ParseFlag(argv[position], "--delta", &value)) {
        if (!ParseDouble(value, &request.params.delta)) return 1;
      } else if (ParseFlag(argv[position], "--csv", &value)) {
        csv_path = value;
      } else if (ParseFlag(argv[position], "--trace", &value)) {
        trace_path = value;
      } else if (ParseFlag(argv[position], "--deadline-ms", &value)) {
        unsigned int deadline_ms = 0;
        if (!ParseUint32(value, &deadline_ms) || deadline_ms == 0) {
          std::fprintf(stderr, "bad --deadline-ms '%s'\n", value.c_str());
          return 1;
        }
        request.budget.deadline_seconds = deadline_ms / 1000.0;
      } else if (ParseFlag(argv[position], "--max-nodes", &value)) {
        unsigned int max_nodes = 0;
        if (!ParseUint32(value, &max_nodes) || max_nodes == 0) {
          std::fprintf(stderr, "bad --max-nodes '%s'\n", value.c_str());
          return 1;
        }
        request.budget.max_nodes = max_nodes;
      } else if (ParseFlag(argv[position], "--max-samples", &value)) {
        unsigned int max_samples = 0;
        if (!ParseUint32(value, &max_samples) || max_samples == 0) {
          std::fprintf(stderr, "bad --max-samples '%s'\n", value.c_str());
          return 1;
        }
        request.budget.max_samples = max_samples;
      } else if (ParseFlag(argv[position], "--snapshot", &value)) {
        if (value.empty()) {
          std::fprintf(stderr, "bad --snapshot (empty path)\n");
          return 1;
        }
        request.snapshot.save_path = value;
      } else if (ParseFlag(argv[position], "--resume", &value)) {
        if (value.empty()) {
          std::fprintf(stderr, "bad --resume (empty path)\n");
          return 1;
        }
        request.snapshot.resume_path = value;
      } else if (ParseFlag(argv[position], "--max-inflight", &value)) {
        unsigned int max_inflight = 0;
        if (!ParseUint32(value, &max_inflight) || max_inflight == 0) {
          std::fprintf(stderr, "bad --max-inflight '%s'\n", value.c_str());
          return 1;
        }
        session_options.max_inflight = max_inflight;
      } else {
        std::fprintf(stderr, "unknown argument '%s'\n", argv[position]);
        return 1;
      }
    }
  }

  // top_k stays 0 (meaning "unused") unless the topk algorithm runs; a
  // topk run without an explicit --top-k gets the historical default.
  if (request.algorithm == Algorithm::kTopK && request.top_k == 0) {
    request.top_k = 10;
  }

  std::unique_ptr<JsonLinesTraceSink> trace_sink;
  if (!trace_path.empty()) {
    trace_sink = std::make_unique<JsonLinesTraceSink>(trace_path);
    if (!trace_sink->ok()) {
      std::fprintf(stderr, "cannot write trace file %s\n", trace_path.c_str());
      return 1;
    }
    request.trace = trace_sink.get();
  }

  if (show_progress) {
    request.progress_interval = 1024;
    request.progress = [](const MiningProgress& progress) {
      std::fprintf(stderr, "\r%llu nodes, %llu itemsets",
                   static_cast<unsigned long long>(progress.nodes_visited),
                   static_cast<unsigned long long>(progress.itemsets_found));
    };
  }

  UncertainDatabase db;
  std::string error;
  if (!LoadUncertainDatabase(path, &db, &error)) {
    std::fprintf(stderr, "failed to load %s: %s\n", path.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("loaded %s: %s\n", path.c_str(),
              ComputeStats(db).ToString().c_str());
  const std::string threads_label =
      request.execution.num_threads == 0
          ? "auto"
          : std::to_string(request.execution.num_threads);
  std::printf("mining with %s, min_sup=%zu, pfct=%g, threads=%s\n",
              AlgorithmName(request.algorithm), request.params.min_sup,
              request.params.pfct, threads_label.c_str());

  if (!request.sweep_min_sup.empty()) {
    // Threshold sweep: one warm MiningSession serves every min_sup, so
    // the index and DP tail tables are paid for once.
    MiningSession session = MiningSession::Open(db, session_options);
    const std::vector<MiningResult> sweep = session.MineSweep(request);
    int exit_code = 0;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const MiningResult& result = sweep[i];
      if (i < request.sweep_min_sup.size()) {
        std::printf("\nmin_sup=%zu: %zu itemsets\n",
                    request.sweep_min_sup[i], result.itemsets.size());
      }
      if (!result.ok()) {
        std::fprintf(stderr, "run did not complete (%s): %s\n",
                     OutcomeName(result.outcome()),
                     result.status_message.c_str());
        if (exit_code == 0) exit_code = ExitCodeFor(result.outcome());
      }
      std::printf("stats: %s\n", result.stats.ToString().c_str());
      if (stats_json) std::printf("%s\n", result.stats.ToJson().c_str());
    }
    return exit_code;
  }

  const MiningResult result = Mine(db, request);
  if (show_progress) std::fprintf(stderr, "\n");
  if (!result.ok()) {
    std::fprintf(stderr, "run did not complete (%s): %s\n",
                 OutcomeName(result.outcome()),
                 result.status_message.c_str());
    if (result.stats.snapshot_bytes > 0) {
      std::fprintf(stderr, "wrote resume snapshot %s (%llu bytes)\n",
                   request.snapshot.save_path.c_str(),
                   static_cast<unsigned long long>(
                       result.stats.snapshot_bytes));
    }
  }
  std::printf("\n%zu probabilistic frequent closed itemsets:\n",
              result.itemsets.size());
  std::printf("%s", result.ToString().c_str());
  std::printf("stats: %s\n", result.stats.ToString().c_str());
  if (stats_json) std::printf("%s\n", result.stats.ToJson().c_str());
  if (trace_sink != nullptr) {
    trace_sink->Flush();
    std::printf("wrote trace %s\n", trace_path.c_str());
  }

  if (!csv_path.empty()) {
    CsvWriter csv(csv_path);
    if (!csv.Ok()) {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 1;
    }
    csv.WriteRow({"itemset", "fcp", "pr_f", "method"});
    for (const PfciEntry& entry : result.itemsets) {
      csv.WriteRow({entry.items.ToString(), FormatDouble(entry.fcp, 10),
                    FormatDouble(entry.pr_f, 10),
                    FcpMethodName(entry.method)});
    }
    std::printf("wrote %s (%d rows)\n", csv_path.c_str(), csv.rows_written());
  }

  return ExitCodeFor(result.outcome());
}
