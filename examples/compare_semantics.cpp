// The semantic comparison of paper Sec. II (Table IV): our
// frequent-closed-probability semantics vs the probabilistic-support
// semantics of [34].
//
// On the Table IV database, [34]'s answer set flips as the probabilistic
// frequent threshold moves from 0.9 to 0.8 even though the frequentness of
// the affected itemsets does not change — while the threshold-based
// frequent closed probability of every itemset is a fixed quantity, so the
// answer only shrinks or grows monotonically with pfct.
//
//   $ ./compare_semantics
#include <cstdio>

#include "src/core/brute_force.h"
#include "src/core/mine.h"
#include "src/core/probabilistic_support.h"
#include "src/harness/dataset_factory.h"

int main() {
  using namespace pfci;
  const UncertainDatabase db = MakeTable4Db();
  const std::size_t min_sup = 2;

  std::printf("Table IV — uncertain transaction database:\n");
  for (Tid tid = 0; tid < db.size(); ++tid) {
    std::printf("  T%u  %-10s  %.1f\n", tid + 1,
                db.transaction(tid).items.ToString(true).c_str(),
                db.prob(tid));
  }

  std::printf("\n[34]'s probabilistic-support semantics (min_sup=%zu):\n",
              min_sup);
  for (double pft : {0.9, 0.8}) {
    std::printf("  pft=%.1f  ->  ", pft);
    for (const PsupEntry& entry : MinePsupClosed(db, min_sup, pft)) {
      std::printf("%s(psup=%zu) ", entry.items.ToString(true).c_str(),
                  entry.psup);
    }
    std::printf("\n");
  }
  std::printf(
      "  The answer set changes with pft although PrF({a}) and PrF({a b}) "
      "already exceed both thresholds — the instability the paper "
      "criticizes.\n");

  std::printf("\nThis paper's semantics (frequent closed probability):\n");
  for (const Itemset& x :
       {Itemset{0}, Itemset{0, 1}, Itemset{0, 1, 2}, Itemset{0, 1, 2, 3}}) {
    const WorldProbabilities truth =
        BruteForceItemsetProbabilities(db, x, min_sup);
    std::printf("  %-12s PrF=%.4f  PrFC=%.4f\n", x.ToString(true).c_str(),
                truth.pr_f, truth.pr_fc);
  }
  for (double pfct : {0.9, 0.8, 0.7}) {
    MiningRequest request;
    request.algorithm = Algorithm::kMpfci;
    request.params.min_sup = min_sup;
    request.params.pfct = pfct;
    const MiningResult result = Mine(db, request);
    std::printf("  pfct=%.1f  ->  ", pfct);
    for (const PfciEntry& entry : result.itemsets) {
      std::printf("%s(PrFC=%.2f) ", entry.items.ToString(true).c_str(),
                  entry.fcp);
    }
    std::printf("\n");
  }
  std::printf(
      "  PrFC is threshold-independent: lowering pfct only ever ADDS "
      "itemsets, and {a}/{a b} (PrFC well below 0.5) never sneak in.\n");
  return 0;
}
