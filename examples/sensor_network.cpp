// Sensor-network monitoring at scale: generate a correlated categorical
// dataset (unreliable sensor readings with Gaussian existence
// probabilities), mine it with MPFCI, and show the compression the paper
// advertises: a handful of probabilistic frequent closed itemsets standing
// in for a much larger set of probabilistic frequent itemsets.
//
//   $ ./sensor_network [rel_min_sup]     (default 0.15)
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/core/mine.h"
#include "src/core/pfi_miner.h"
#include "src/data/database_stats.h"
#include "src/datagen/mushroom_generator.h"
#include "src/datagen/probability_assigner.h"
#include "src/harness/dataset_factory.h"

int main(int argc, char** argv) {
  using namespace pfci;
  const double rel = argc > 1 ? std::atof(argv[1]) : 0.15;

  // A fleet of sensors reporting 12 categorical attributes per reading
  // (location cell, weather, congestion level, ...), with readings
  // dropped or corrupted so each row only exists with some probability.
  MushroomParams gen;
  gen.num_transactions = 1500;
  gen.num_attributes = 12;
  gen.values_per_attribute = 4;
  gen.num_species = 8;  // Latent "traffic regimes".
  gen.seed = 99;
  GaussianAssignerParams assign;
  assign.mean = 0.7;
  assign.spread = 0.2;
  assign.seed = 17;
  const UncertainDatabase db =
      AssignGaussianProbabilities(GenerateMushroomLike(gen), assign);
  std::printf("sensor log: %s\n", ComputeStats(db).ToString().c_str());

  MiningParams params;
  params.min_sup = AbsoluteMinSup(db.size(), rel);
  params.pfct = 0.8;
  std::printf("mining with min_sup=%zu (%.0f%% of rows), pfct=%.2f\n",
              params.min_sup, rel * 100, params.pfct);

  const auto pfis = MinePfi(db, params.min_sup, params.pfct);
  MiningRequest request;
  request.algorithm = Algorithm::kMpfci;
  request.params = params;
  const MiningResult result = Mine(db, request);

  std::printf("\nprobabilistic frequent itemsets:        %6zu\n",
              pfis.size());
  std::printf("probabilistic frequent CLOSED itemsets: %6zu  (%.1f%%)\n",
              result.itemsets.size(),
              pfis.empty() ? 0.0
                           : 100.0 * static_cast<double>(
                                         result.itemsets.size()) /
                                 static_cast<double>(pfis.size()));

  std::printf("\ntop patterns (by frequent closed probability):\n");
  std::vector<PfciEntry> sorted = result.itemsets;
  std::sort(sorted.begin(), sorted.end(),
            [](const PfciEntry& a, const PfciEntry& b) {
              return a.fcp > b.fcp;
            });
  const std::size_t show = sorted.size() < 10 ? sorted.size() : 10;
  for (std::size_t i = 0; i < show; ++i) {
    std::printf("  %2zu. %-28s PrFC=%.4f  PrF=%.4f\n", i + 1,
                sorted[i].items.ToString().c_str(), sorted[i].fcp,
                sorted[i].pr_f);
  }
  std::printf("\nmining stats: %s\n", result.stats.ToString().c_str());
  return 0;
}
