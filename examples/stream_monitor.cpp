// Streaming monitoring: mine probabilistic frequent closed itemsets over
// a sliding window of unreliable sensor readings, and watch the answer
// track a mid-stream pattern change (the "traffic regime shift" the
// paper's Sec. I scenario motivates).
//
//   $ ./stream_monitor
#include <cstdio>

#include "src/core/stream_miner.h"
#include "src/util/random.h"

int main() {
  using namespace pfci;

  // Window of 200 readings; a pattern is reported when it is frequent
  // closed with probability > 0.7 at support >= 50 within the window.
  MiningParams params;
  params.min_sup = 50;
  params.pfct = 0.7;
  StreamingPfciMiner miner(params, /*window_size=*/200);

  Rng rng(2026);
  // Two traffic regimes: rush hour {jam=0, rain=1, slow=2} and night
  // {free=3, clear=4}; background noise items 5..9.
  const auto observe_regime = [&](bool rush) {
    std::vector<Item> items =
        rush ? std::vector<Item>{0, 1, 2} : std::vector<Item>{3, 4};
    for (Item noise = 5; noise < 10; ++noise) {
      if (rng.NextBernoulli(0.2)) items.push_back(noise);
    }
    // Sensor reliability: readings exist with probability ~N(0.8, 0.1).
    double prob = rng.NextGaussian(0.8, 0.1);
    prob = prob < 0.05 ? 0.05 : (prob > 1.0 ? 1.0 : prob);
    miner.Observe(Itemset(std::move(items)), prob);
  };

  const auto report = [&](const char* label) {
    const MiningResult result = miner.MineWindow();
    std::printf("%s (seen=%llu, window=%zu): %zu patterns\n", label,
                static_cast<unsigned long long>(miner.transactions_seen()),
                miner.window_fill(), result.itemsets.size());
    for (const PfciEntry& entry : result.itemsets) {
      std::printf("    %-14s PrFC=%.3f\n", entry.items.ToString().c_str(),
                  entry.fcp);
    }
  };

  std::printf("phase 1: rush-hour regime streams in\n");
  for (int i = 0; i < 200; ++i) observe_regime(/*rush=*/true);
  report("after phase 1");

  std::printf("\nphase 2: regime shifts to night traffic\n");
  for (int i = 0; i < 100; ++i) observe_regime(/*rush=*/false);
  report("mid-transition (window still mixed)");

  for (int i = 0; i < 100; ++i) observe_regime(/*rush=*/false);
  report("after full window turnover");

  std::printf(
      "\nReading: the closed-pattern answer follows the regime shift as "
      "the window rolls over — {0 1 2} fades out, {3 4} takes over.\n");
  return 0;
}
