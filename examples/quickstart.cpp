// Quickstart: build an uncertain transaction database, mine its
// probabilistic frequent closed itemsets with MPFCI, and inspect the
// per-itemset probabilities.
//
//   $ ./quickstart
#include <cstdio>

#include "src/core/fcp_engine.h"
#include "src/core/frequent_probability.h"
#include "src/core/mine.h"
#include "src/data/uncertain_database.h"
#include "src/data/vertical_index.h"

int main() {
  using namespace pfci;

  // 1. An uncertain transaction database (tuple-uncertainty model): each
  //    transaction exists independently with the given probability.
  UncertainDatabase db;
  db.Add(Itemset{0, 1, 2, 3}, 0.9);  // {a b c d}
  db.Add(Itemset{0, 1, 2}, 0.6);     // {a b c}
  db.Add(Itemset{0, 1, 2}, 0.7);     // {a b c}
  db.Add(Itemset{0, 1, 2, 3}, 0.9);  // {a b c d}

  // 2. Mining parameters: an itemset qualifies when the total probability
  //    of the possible worlds in which it is a *frequent closed* itemset
  //    (support >= min_sup and no superset with equal support) exceeds
  //    pfct.
  MiningParams params;
  params.min_sup = 2;
  params.pfct = 0.8;

  // 3. Run the MPFCI depth-first miner through the Mine() front door.
  MiningRequest request;
  request.algorithm = Algorithm::kMpfci;
  request.params = params;
  const MiningResult result = Mine(db, request);

  std::printf("Probabilistic frequent closed itemsets "
              "(min_sup=%zu, pfct=%.2f):\n",
              params.min_sup, params.pfct);
  for (const PfciEntry& entry : result.itemsets) {
    std::printf("  %-12s  PrFC=%.4f  PrF=%.4f  (%s)\n",
                entry.items.ToString(/*letters=*/true).c_str(), entry.fcp,
                entry.pr_f, FcpMethodName(entry.method));
  }
  std::printf("stats: %s\n\n", result.stats.ToString().c_str());

  // 4. Probabilities of a single itemset of interest, via the engine.
  const VerticalIndex index(db);
  const FrequentProbability freq(index, params.min_sup);
  const FcpEngine engine(index, freq, params);
  Rng rng(1);
  const FcpComputation abc = engine.ComputeFcp(Itemset{0, 1, 2}, rng);
  std::printf("{a b c}: PrF=%.4f, PrFC=%.4f, bounds=[%.4f, %.4f]\n",
              abc.pr_f, abc.fcp, abc.bounds.lower, abc.bounds.upper);
  return 0;
}
