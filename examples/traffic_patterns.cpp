// The paper's motivating scenario (Sec. I): mining hidden traffic patterns
// from unreliable sensor logs. Reproduces Tables I-III end to end:
// the uncertain database, all 16 possible worlds with their frequent
// closed itemsets, and the resulting probabilistic frequent closed
// itemsets — including the exact values PrFC({a b c}) = 0.8754 and
// PrFC({a b c d}) = 0.81 from Examples 1.2/4.3.
//
//   $ ./traffic_patterns
#include <cstdio>
#include <string>

#include "src/core/brute_force.h"
#include "src/core/mine.h"
#include "src/core/pfi_miner.h"
#include "src/data/world_enumerator.h"
#include "src/exact/closed_miner.h"
#include "src/harness/dataset_factory.h"

int main() {
  using namespace pfci;

  // Table I / II: four sensor readings of the HKUST crossroad, with
  // symbols a = "HKUST", b = "Rain", c = "2:30-3:00", d = "speed 80".
  const UncertainDatabase db = MakePaperExampleDb();
  std::printf("Table II — uncertain transaction database:\n");
  for (Tid tid = 0; tid < db.size(); ++tid) {
    std::printf("  T%u  %-10s  %.1f\n", tid + 1,
                db.transaction(tid).items.ToString(true).c_str(),
                db.prob(tid));
  }

  // Table III: every possible world, its probability, and its frequent
  // closed itemsets at min_sup = 2.
  const std::size_t min_sup = 2;
  std::printf("\nTable III — possible worlds (min_sup=%zu):\n", min_sup);
  int world_id = 0;
  EnumerateWorlds(db, [&](const PossibleWorld& world, double prob) {
    ++world_id;
    std::string transactions;
    for (Tid tid : world.PresentTids()) {
      transactions += "T" + std::to_string(tid + 1) + " ";
    }
    if (transactions.empty()) transactions = "(empty)";
    std::string closed_sets;
    const TransactionDatabase world_db =
        TransactionDatabase::FromWorld(db, world);
    MineClosedItemsetsInto(world_db, min_sup,
                           [&](const Itemset& itemset, std::size_t) {
                             closed_sets += itemset.ToString(true) + " ";
                           });
    if (closed_sets.empty()) closed_sets = "{}";
    std::printf("  PW%-2d  %-14s %.4f   %s\n", world_id, transactions.c_str(),
                prob, closed_sets.c_str());
  });

  // Example 1.1: there are 15 probabilistic frequent itemsets at
  // pft = 0.8 — too many, and with indistinguishable probabilities.
  const auto pfis = MinePfi(db, min_sup, 0.8);
  std::printf("\nProbabilistic frequent itemsets (pft=0.8): %zu\n",
              pfis.size());

  // Examples 1.2 / 4.3: only {a b c} and {a b c d} are probabilistic
  // frequent CLOSED itemsets — the compressed answer.
  MiningRequest request;
  request.algorithm = Algorithm::kMpfci;
  request.params.min_sup = min_sup;
  request.params.pfct = 0.8;
  const MiningResult result = Mine(db, request);
  std::printf("Probabilistic frequent closed itemsets (pfct=0.8): %zu\n",
              result.itemsets.size());
  for (const PfciEntry& entry : result.itemsets) {
    const WorldProbabilities truth =
        BruteForceItemsetProbabilities(db, entry.items, min_sup);
    std::printf("  %-12s  PrFC=%.4f  (exact by world enumeration: %.4f)\n",
                entry.items.ToString(true).c_str(), entry.fcp, truth.pr_fc);
  }
  std::printf(
      "\nReading: the %zu-itemset answer compresses the %zu probabilistic "
      "frequent itemsets while keeping exact probabilistic semantics.\n",
      result.itemsets.size(), pfis.size());
  return 0;
}
