// Regenerates Fig. 7 (a, b): running time of the five pruning variants as
// the probabilistic frequent closed threshold pfct varies.
//
// Expected shape (paper): pfct barely moves any curve (runtime is driven
// by min_sup, not by the probability threshold); MPFCI remains fastest
// and MPFCI-NoBound slowest throughout.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/harness/experiment.h"
#include "src/harness/table_printer.h"
#include "src/harness/variants.h"

namespace pfci {
namespace {

void RunDataset(const char* name, const UncertainDatabase& db,
                BenchScale scale, bool mushroom) {
  const double rel = bench::DefaultRelMinSup(scale, mushroom);
  std::printf("\n[%s] %zu transactions, rel_min_sup=%.2f (times in s)\n",
              name, db.size(), rel);
  TablePrinter table;
  std::vector<std::string> header = {"pfct"};
  for (AlgorithmVariant variant : PruningVariants()) {
    header.push_back(VariantName(variant));
  }
  header.push_back("num_PFCI");
  table.SetHeader(header);

  for (double pfct : bench::PfctSweep()) {
    MiningParams params = bench::PaperDefaultParams(db, rel);
    params.pfct = pfct;
    std::vector<std::string> row = {std::to_string(pfct)};
    std::size_t num_pfci = 0;
    for (AlgorithmVariant variant : PruningVariants()) {
      const MiningResult result = RunVariant(variant, db, params);
      row.push_back(bench::FormatSeconds(result.stats.seconds));
      num_pfci = result.itemsets.size();
    }
    row.push_back(std::to_string(num_pfci));
    table.AddRow(row);
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace
}  // namespace pfci

int main() {
  using namespace pfci;
  const BenchScale scale = ScaleFromEnv();
  PrintBanner("Fig. 7", std::string("pruning variants w.r.t. pfct (scale=") +
                            ScaleName(scale) + ")");
  RunDataset("Mushroom-like", MakeUncertainMushroom(scale), scale, true);
  RunDataset("T20I10D30KP40-like", MakeUncertainQuest(scale), scale, false);
  std::printf(
      "\nExpected shape: near-flat curves in pfct; ordering "
      "MPFCI < others < MPFCI-NoBound preserved.\n");
  return 0;
}
