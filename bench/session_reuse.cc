// Serving-layer amortization: one MiningSession answering a 10-threshold
// min_sup sweep versus ten independent cold Mine() calls (DESIGN.md §11).
//
// The warm path opens the session once (index built once) and calls
// MineSweep, which runs the lowest threshold first with Poisson-binomial
// tail tables extended to the sweep maximum — the higher thresholds are
// then answered from the stored tables without re-running the DP.
//
// Two workloads on the paper's synthetic Quest dataset: the flagship
// MPFCI miner (PrF plus closedness work; the latter is per-run by design,
// sampled FCP is never cached) and PFI frequentness mining, where PrF
// evaluations dominate runtime (Tong et al.) and the cache pays off in
// full. Acceptance: aggregate warm wall-clock <= 1/2 of aggregate cold
// across the workloads, with every per-threshold result bit-identical to
// its cold run.
//
// Writes BENCH_session.json (schema checked by
// tools/check_bench_session.py) with per-workload grids, timings, and the
// session cache counters.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/mine.h"
#include "src/harness/experiment.h"
#include "src/harness/table_printer.h"
#include "src/serve/mining_session.h"

namespace pfci {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ThresholdRecord {
  std::size_t min_sup = 0;
  std::size_t itemsets = 0;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  std::uint64_t cold_dp_runs = 0;
  std::uint64_t warm_dp_runs = 0;
  std::uint64_t warm_cache_hits = 0;
  std::uint64_t warm_dp_reused = 0;
};

struct WorkloadRecord {
  std::string algorithm;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
  bool identical = true;
  std::vector<ThresholdRecord> thresholds;
  std::uint64_t cache_bytes = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t warm_items = 0;
};

/// Ten strictly increasing absolute thresholds forming a fine-grained
/// sweep around the quick datasets' interesting regime — the serving
/// pattern the session targets (dashboards and parameter exploration
/// re-query at nearby thresholds, where candidate sets overlap heavily
/// and the extended tail tables answer nearly everything).
std::vector<std::size_t> SweepGrid(std::size_t num_transactions) {
  const std::size_t low = AbsoluteMinSup(num_transactions, 0.15);
  const std::size_t high = AbsoluteMinSup(num_transactions, 0.20);
  std::vector<std::size_t> grid;
  for (std::size_t i = 0; i < 10; ++i) {
    const std::size_t value = low + i * (high - low) / 9;
    if (grid.empty() || value > grid.back()) {
      grid.push_back(value);
    } else {
      grid.push_back(grid.back() + 1);  // Keep strictly increasing.
    }
  }
  return grid;
}

bool SameItemsets(const MiningResult& a, const MiningResult& b) {
  if (a.itemsets.size() != b.itemsets.size()) return false;
  for (std::size_t i = 0; i < a.itemsets.size(); ++i) {
    if (!(a.itemsets[i].items == b.itemsets[i].items) ||
        a.itemsets[i].fcp != b.itemsets[i].fcp ||
        a.itemsets[i].pr_f != b.itemsets[i].pr_f) {
      return false;
    }
  }
  return true;
}

WorkloadRecord RunWorkload(const UncertainDatabase& db, Algorithm algorithm,
                           const std::vector<std::size_t>& grid) {
  WorkloadRecord workload;
  workload.algorithm = AlgorithmName(algorithm);
  std::printf("\n[%s] %zu thresholds, min_sup %zu..%zu\n",
              workload.algorithm.c_str(), grid.size(), grid.front(),
              grid.back());

  MiningRequest request;
  request.algorithm = algorithm;
  request.params.pfct = 0.8;
  request.sweep_min_sup = grid;

  // Cold: an independent Mine() per threshold — index rebuilt and every
  // PrF re-derived each time.
  std::vector<MiningResult> cold(grid.size());
  const double cold_begin = Now();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    MiningRequest step = request;
    step.sweep_min_sup.clear();
    step.params.min_sup = grid[i];
    cold[i] = Mine(db, step);
  }
  workload.cold_seconds = Now() - cold_begin;

  // Warm: one session, one sweep. Open() is included — the index build
  // is part of the amortized cost.
  const double warm_begin = Now();
  MiningSession session = MiningSession::Open(db);
  const std::vector<MiningResult> warm = session.MineSweep(request);
  workload.warm_seconds = Now() - warm_begin;

  TablePrinter table;
  table.SetHeader({"min_sup", "itemsets", "cold_s", "warm_s", "cold_dp",
                   "warm_dp", "hits", "dp_reused"});
  workload.thresholds.resize(grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    ThresholdRecord& rec = workload.thresholds[i];
    rec.min_sup = grid[i];
    rec.itemsets = cold[i].itemsets.size();
    rec.cold_seconds = cold[i].stats.seconds;
    rec.warm_seconds = warm[i].stats.seconds;
    rec.cold_dp_runs = cold[i].stats.dp_runs;
    rec.warm_dp_runs = warm[i].stats.dp_runs;
    rec.warm_cache_hits = warm[i].stats.cache_hits;
    rec.warm_dp_reused = warm[i].stats.dp_reused;
    if (!SameItemsets(cold[i], warm[i])) {
      workload.identical = false;
      std::fprintf(stderr, "MISMATCH %s min_sup=%zu\n",
                   workload.algorithm.c_str(), grid[i]);
    }
    table.AddRow({std::to_string(rec.min_sup), std::to_string(rec.itemsets),
                  bench::FormatSeconds(rec.cold_seconds),
                  bench::FormatSeconds(rec.warm_seconds),
                  std::to_string(rec.cold_dp_runs),
                  std::to_string(rec.warm_dp_runs),
                  std::to_string(rec.warm_cache_hits),
                  std::to_string(rec.warm_dp_reused)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("%s: cold %.3fs  warm %.3fs  speedup %.2fx\n",
              workload.algorithm.c_str(), workload.cold_seconds,
              workload.warm_seconds,
              workload.warm_seconds > 0.0
                  ? workload.cold_seconds / workload.warm_seconds
                  : 0.0);

  workload.cache_bytes = session.cache_bytes();
  workload.cache_entries = session.cache_entries();
  workload.cache_evictions = session.cache_evictions();
  workload.warm_items = session.warm_items_recorded();
  return workload;
}

void WriteJson(const char* path, const UncertainDatabase& db,
               const std::vector<WorkloadRecord>& workloads,
               double cold_total, double warm_total, bool identical) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"schema\": 1,\n"
               "  \"dataset\": \"T20I10D30KP40-like\",\n"
               "  \"transactions\": %zu,\n"
               "  \"cold_seconds\": %.6f,\n"
               "  \"warm_seconds\": %.6f,\n"
               "  \"speedup\": %.4f,\n"
               "  \"identical\": %s,\n"
               "  \"workloads\": [\n",
               db.size(), cold_total, warm_total,
               warm_total > 0.0 ? cold_total / warm_total : 0.0,
               identical ? "true" : "false");
  for (std::size_t w = 0; w < workloads.size(); ++w) {
    const WorkloadRecord& workload = workloads[w];
    std::fprintf(out,
                 "    {\"algorithm\": \"%s\", \"cold_seconds\": %.6f, "
                 "\"warm_seconds\": %.6f, \"identical\": %s,\n"
                 "     \"cache\": {\"bytes\": %llu, \"entries\": %llu, "
                 "\"evictions\": %llu, \"warm_items\": %zu},\n"
                 "     \"per_threshold\": [\n",
                 workload.algorithm.c_str(), workload.cold_seconds,
                 workload.warm_seconds,
                 workload.identical ? "true" : "false",
                 static_cast<unsigned long long>(workload.cache_bytes),
                 static_cast<unsigned long long>(workload.cache_entries),
                 static_cast<unsigned long long>(workload.cache_evictions),
                 workload.warm_items);
    for (std::size_t i = 0; i < workload.thresholds.size(); ++i) {
      const ThresholdRecord& rec = workload.thresholds[i];
      std::fprintf(
          out,
          "       {\"min_sup\": %zu, \"itemsets\": %zu, "
          "\"cold_seconds\": %.6f, \"warm_seconds\": %.6f, "
          "\"cold_dp_runs\": %llu, \"warm_dp_runs\": %llu, "
          "\"cache_hits\": %llu, \"dp_reused\": %llu}%s\n",
          rec.min_sup, rec.itemsets, rec.cold_seconds, rec.warm_seconds,
          static_cast<unsigned long long>(rec.cold_dp_runs),
          static_cast<unsigned long long>(rec.warm_dp_runs),
          static_cast<unsigned long long>(rec.warm_cache_hits),
          static_cast<unsigned long long>(rec.warm_dp_reused),
          i + 1 < workload.thresholds.size() ? "," : "");
    }
    std::fprintf(out, "     ]}%s\n",
                 w + 1 < workloads.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s (%zu workloads)\n", path, workloads.size());
}

}  // namespace
}  // namespace pfci

int main() {
  using namespace pfci;
  const BenchScale scale = ScaleFromEnv();
  PrintBanner("Session reuse",
              std::string("MiningSession sweep vs cold runs (scale=") +
                  ScaleName(scale) + ")");

  const UncertainDatabase db = MakeUncertainQuest(scale);
  const std::vector<std::size_t> grid = SweepGrid(db.size());
  std::printf("\n[T20I10D30KP40-like] %zu transactions\n", db.size());

  std::vector<WorkloadRecord> workloads;
  workloads.push_back(RunWorkload(db, Algorithm::kMpfci, grid));
  workloads.push_back(RunWorkload(db, Algorithm::kPfi, grid));

  double cold_total = 0.0;
  double warm_total = 0.0;
  bool identical = true;
  for (const WorkloadRecord& workload : workloads) {
    cold_total += workload.cold_seconds;
    warm_total += workload.warm_seconds;
    identical = identical && workload.identical;
  }
  const double speedup =
      warm_total > 0.0 ? cold_total / warm_total : 0.0;
  std::printf("\naggregate: cold %.3fs  warm %.3fs  speedup %.2fx\n",
              cold_total, warm_total, speedup);
  const bool fast_enough = warm_total <= cold_total / 2.0;
  std::printf("acceptance (aggregate warm <= 1/2 cold): %s\n",
              fast_enough ? "PASS" : "FAIL");
  std::printf("results bit-identical to cold runs: %s\n",
              identical ? "PASS" : "FAIL");

  WriteJson("BENCH_session.json", db, workloads, cold_total, warm_total,
            identical);
  return (identical && fast_enough) ? 0 : 1;
}
