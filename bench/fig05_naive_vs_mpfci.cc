// Regenerates Fig. 5 (a, b): running time of MPFCI vs the Naive baseline
// (PFI mining + per-itemset ApproxFCP) as min_sup varies, on the
// Mushroom-like and Quest datasets.
//
// Expected shape (paper): both grow as min_sup decreases, but Naive's cost
// explodes (it exceeded the 1-hour cap below min_sup 0.4 on Mushroom)
// while MPFCI stays flat, because the bounding/pruning pipeline avoids
// almost all per-itemset probability computations.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/harness/experiment.h"
#include "src/harness/table_printer.h"
#include "src/harness/variants.h"

namespace pfci {
namespace {

void RunDataset(const char* name, const UncertainDatabase& db,
                BenchScale scale) {
  std::printf("\n[%s] %zu transactions\n", name, db.size());
  TablePrinter table;
  table.SetHeader({"rel_min_sup", "min_sup", "MPFCI_s", "Naive_s",
                   "num_PFCI", "naive/mpfci"});
  // Naive's cost roughly multiplies by the PFI growth between sweep
  // points, so the cap is applied *anticipatorily*: once a run exceeds a
  // tenth of the cap, the next (more expensive) point is skipped — the
  // paper did the same with a 1-hour cutoff.
  const double cap = bench::RuntimeCapSeconds(scale) / 10.0;
  bool naive_capped = false;
  for (double rel : bench::MinSupSweep(scale)) {
    const MiningParams params = bench::PaperDefaultParams(db, rel);
    const MiningResult mpfci =
        RunVariant(AlgorithmVariant::kMpfci, db, params);
    std::string naive_time = ">cap";
    std::string ratio = "-";
    if (!naive_capped) {
      const MiningResult naive =
          RunVariant(AlgorithmVariant::kNaive, db, params);
      naive_time = bench::FormatSeconds(naive.stats.seconds);
      if (mpfci.stats.seconds > 0) {
        char buffer[32];
        std::snprintf(buffer, sizeof(buffer), "%.1fx",
                      naive.stats.seconds / mpfci.stats.seconds);
        ratio = buffer;
      }
      if (naive.stats.seconds > cap) naive_capped = true;
    }
    table.AddRow({std::to_string(rel), std::to_string(params.min_sup),
                  bench::FormatSeconds(mpfci.stats.seconds), naive_time,
                  std::to_string(mpfci.itemsets.size()), ratio});
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace
}  // namespace pfci

int main() {
  using namespace pfci;
  const BenchScale scale = ScaleFromEnv();
  PrintBanner("Fig. 5", std::string("MPFCI vs Naive w.r.t. min_sup (scale=") +
                            ScaleName(scale) + ")");
  RunDataset("Mushroom-like", MakeUncertainMushroom(scale), scale);
  RunDataset("T20I10D30KP40-like", MakeUncertainQuest(scale), scale);
  std::printf(
      "\nExpected shape: Naive/MPFCI ratio grows sharply as min_sup "
      "decreases; MPFCI stays near-flat.\n");
  return 0;
}
