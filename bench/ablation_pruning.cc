// Ablation: what each pruning rule actually does (DESIGN.md §2).
//
// Beyond Fig. 6's wall-clock comparison, this prints the internal work
// counters of each variant — nodes visited, itemsets removed by each rule,
// probability computations executed — so the mechanism behind the
// runtimes is visible (e.g. the Lemma 4.4 bounds decide almost every
// surviving node, which is why MPFCI-NoBound degrades into per-node
// sampling).
//
// Also writes BENCH_ablation_pruning.json (one object per dataset ×
// variant with the merged counters under the stats-json v2 key names) so
// EXPERIMENTS.md tables and regression scripts can consume the counters
// without screen-scraping.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/harness/experiment.h"
#include "src/harness/table_printer.h"
#include "src/harness/variants.h"

namespace pfci {
namespace {

struct VariantRecord {
  std::string dataset;
  std::string variant;
  std::string stats_json;  ///< MiningStats::ToJson() (schema v2).
  std::size_t itemsets = 0;
};

std::vector<VariantRecord> g_records;

void RunDataset(const char* name, const UncertainDatabase& db,
                BenchScale scale, bool mushroom) {
  const double rel = bench::DefaultRelMinSup(scale, mushroom);
  std::printf("\n[%s] %zu transactions, rel_min_sup=%.2f\n", name, db.size(),
              rel);
  TablePrinter table;
  table.SetHeader({"variant", "time_s", "nodes", "ch", "freq", "super",
                   "sub", "bounds", "zero_cnt", "exactFCP", "sampledFCP",
                   "samples", "dp_runs"});
  const MiningParams params = bench::PaperDefaultParams(db, rel);
  std::vector<AlgorithmVariant> variants = PruningVariants();
  variants.push_back(AlgorithmVariant::kBfs);
  for (AlgorithmVariant variant : variants) {
    const MiningResult r = RunVariant(variant, db, params);
    const MiningStats& s = r.stats;
    table.AddRow({VariantName(variant), bench::FormatSeconds(s.seconds),
                  std::to_string(s.nodes_visited),
                  std::to_string(s.pruned_by_chernoff),
                  std::to_string(s.pruned_by_frequency),
                  std::to_string(s.pruned_by_superset),
                  std::to_string(s.pruned_by_subset),
                  std::to_string(s.decided_by_bounds),
                  std::to_string(s.zero_by_count),
                  std::to_string(s.exact_fcp_computations),
                  std::to_string(s.sampled_fcp_computations),
                  std::to_string(s.total_samples),
                  std::to_string(s.dp_runs)});
    g_records.push_back(
        VariantRecord{name, VariantName(variant), s.ToJson(),
                      r.itemsets.size()});
  }
  std::printf("%s", table.Render().c_str());
}

void WriteJson(const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < g_records.size(); ++i) {
    const VariantRecord& rec = g_records[i];
    std::fprintf(out,
                 "  {\"dataset\": \"%s\", \"variant\": \"%s\", "
                 "\"itemsets\": %zu, \"stats\": %s}%s\n",
                 rec.dataset.c_str(), rec.variant.c_str(), rec.itemsets,
                 rec.stats_json.c_str(),
                 i + 1 < g_records.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("\nwrote %s (%zu records)\n", path, g_records.size());
}

}  // namespace
}  // namespace pfci

int main() {
  using namespace pfci;
  const BenchScale scale = ScaleFromEnv();
  PrintBanner("Ablation A", std::string("per-rule pruning work (scale=") +
                                ScaleName(scale) + ")");
  RunDataset("Mushroom-like", MakeUncertainMushroom(scale), scale, true);
  RunDataset("T20I10D30KP40-like", MakeUncertainQuest(scale), scale, false);
  WriteJson("BENCH_ablation_pruning.json");
  return 0;
}
