// Ablation: what each pruning rule actually does (DESIGN.md §2).
//
// Beyond Fig. 6's wall-clock comparison, this prints the internal work
// counters of each variant — nodes visited, itemsets removed by each rule,
// probability computations executed — so the mechanism behind the
// runtimes is visible (e.g. the Lemma 4.4 bounds decide almost every
// surviving node, which is why MPFCI-NoBound degrades into per-node
// sampling).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/harness/experiment.h"
#include "src/harness/table_printer.h"
#include "src/harness/variants.h"

namespace pfci {
namespace {

void RunDataset(const char* name, const UncertainDatabase& db,
                BenchScale scale, bool mushroom) {
  const double rel = bench::DefaultRelMinSup(scale, mushroom);
  std::printf("\n[%s] %zu transactions, rel_min_sup=%.2f\n", name, db.size(),
              rel);
  TablePrinter table;
  table.SetHeader({"variant", "time_s", "nodes", "ch", "freq", "super",
                   "sub", "bounds", "zero_cnt", "exactFCP", "sampledFCP",
                   "samples", "dp_runs"});
  const MiningParams params = bench::PaperDefaultParams(db, rel);
  std::vector<AlgorithmVariant> variants = PruningVariants();
  variants.push_back(AlgorithmVariant::kBfs);
  for (AlgorithmVariant variant : variants) {
    const MiningResult r = RunVariant(variant, db, params);
    const MiningStats& s = r.stats;
    table.AddRow({VariantName(variant), bench::FormatSeconds(s.seconds),
                  std::to_string(s.nodes_visited),
                  std::to_string(s.pruned_by_chernoff),
                  std::to_string(s.pruned_by_frequency),
                  std::to_string(s.pruned_by_superset),
                  std::to_string(s.pruned_by_subset),
                  std::to_string(s.decided_by_bounds),
                  std::to_string(s.zero_by_count),
                  std::to_string(s.exact_fcp_computations),
                  std::to_string(s.sampled_fcp_computations),
                  std::to_string(s.total_samples),
                  std::to_string(s.dp_runs)});
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace
}  // namespace pfci

int main() {
  using namespace pfci;
  const BenchScale scale = ScaleFromEnv();
  PrintBanner("Ablation A", std::string("per-rule pruning work (scale=") +
                                ScaleName(scale) + ")");
  RunDataset("Mushroom-like", MakeUncertainMushroom(scale), scale, true);
  RunDataset("T20I10D30KP40-like", MakeUncertainQuest(scale), scale, false);
  return 0;
}
