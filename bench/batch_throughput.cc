// Shared-scan batch throughput: one MiningSession::MineBatch over a
// 12-request mixed workload versus twelve independent cold Mine() calls
// (DESIGN.md §15).
//
// The workload interleaves MPFCI and PFI requests at six distinct
// thresholds each, submitted in descending-threshold order — the worst
// case for naive sequential reuse and exactly what BatchPlanner
// normalizes: requests are grouped by (algorithm, tid-set mode), each
// group is replanned onto an ascending threshold ladder, and the group
// leader's Poisson-binomial tail tables are extended to the group
// maximum so every follower answers from the shared tables.
//
// Acceptance: batch wall-clock <= 1/2 of the sequential loop, with every
// per-request result bit-identical to its cold standalone run.
//
// Writes BENCH_batch.json (schema checked by
// tools/check_bench_session.py, which dispatches on "kind": "batch")
// with per-request timings and the batch counters stamped by the
// serving layer (batch_size, batch_groups, shared_dp_hits).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/mine.h"
#include "src/harness/experiment.h"
#include "src/harness/table_printer.h"
#include "src/serve/mining_session.h"

namespace pfci {
namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct RequestRecord {
  std::string algorithm;
  std::size_t min_sup = 0;
  std::size_t itemsets = 0;
  double sequential_seconds = 0.0;
  double batch_seconds = 0.0;
  std::uint64_t shared_dp_hits = 0;
  std::uint64_t queued_micros = 0;
};

/// Six strictly increasing absolute thresholds in the quick datasets'
/// interesting regime (the same band session_reuse sweeps).
std::vector<std::size_t> ThresholdGrid(std::size_t num_transactions) {
  const std::size_t low = AbsoluteMinSup(num_transactions, 0.15);
  const std::size_t high = AbsoluteMinSup(num_transactions, 0.20);
  std::vector<std::size_t> grid;
  for (std::size_t i = 0; i < 6; ++i) {
    const std::size_t value = low + i * (high - low) / 5;
    if (grid.empty() || value > grid.back()) {
      grid.push_back(value);
    } else {
      grid.push_back(grid.back() + 1);  // Keep strictly increasing.
    }
  }
  return grid;
}

/// The mixed 12-request workload: MPFCI and PFI interleaved, thresholds
/// descending — submission order deliberately adversarial to reuse so
/// the measured win comes from the planner's regrouping, not from a
/// conveniently sorted input.
std::vector<MiningRequest> MakeWorkload(const std::vector<std::size_t>& grid) {
  std::vector<MiningRequest> requests;
  for (std::size_t i = grid.size(); i-- > 0;) {
    for (const Algorithm algorithm : {Algorithm::kMpfci, Algorithm::kPfi}) {
      MiningRequest request;
      request.algorithm = algorithm;
      request.params.min_sup = grid[i];
      request.params.pfct = 0.8;
      requests.push_back(request);
    }
  }
  return requests;
}

bool SameItemsets(const MiningResult& a, const MiningResult& b) {
  if (a.itemsets.size() != b.itemsets.size()) return false;
  for (std::size_t i = 0; i < a.itemsets.size(); ++i) {
    if (!(a.itemsets[i].items == b.itemsets[i].items) ||
        a.itemsets[i].fcp != b.itemsets[i].fcp ||
        a.itemsets[i].pr_f != b.itemsets[i].pr_f) {
      return false;
    }
  }
  return true;
}

void WriteJson(const char* path, const UncertainDatabase& db,
               const std::vector<RequestRecord>& records,
               std::size_t batch_groups, double sequential_seconds,
               double batch_seconds, bool identical) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out,
               "{\n"
               "  \"schema\": 1,\n"
               "  \"kind\": \"batch\",\n"
               "  \"dataset\": \"T20I10D30KP40-like\",\n"
               "  \"transactions\": %zu,\n"
               "  \"requests\": %zu,\n"
               "  \"groups\": %zu,\n"
               "  \"sequential_seconds\": %.6f,\n"
               "  \"batch_seconds\": %.6f,\n"
               "  \"speedup\": %.4f,\n"
               "  \"identical\": %s,\n"
               "  \"per_request\": [\n",
               db.size(), records.size(), batch_groups, sequential_seconds,
               batch_seconds,
               batch_seconds > 0.0 ? sequential_seconds / batch_seconds : 0.0,
               identical ? "true" : "false");
  for (std::size_t i = 0; i < records.size(); ++i) {
    const RequestRecord& rec = records[i];
    std::fprintf(
        out,
        "    {\"algorithm\": \"%s\", \"min_sup\": %zu, \"itemsets\": %zu, "
        "\"sequential_seconds\": %.6f, \"batch_seconds\": %.6f, "
        "\"shared_dp_hits\": %llu, \"queued_micros\": %llu}%s\n",
        rec.algorithm.c_str(), rec.min_sup, rec.itemsets,
        rec.sequential_seconds, rec.batch_seconds,
        static_cast<unsigned long long>(rec.shared_dp_hits),
        static_cast<unsigned long long>(rec.queued_micros),
        i + 1 < records.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s (%zu requests, %zu groups)\n", path, records.size(),
              batch_groups);
}

}  // namespace
}  // namespace pfci

int main() {
  using namespace pfci;
  const BenchScale scale = ScaleFromEnv();
  PrintBanner("Batch throughput",
              std::string("MineBatch shared scan vs sequential loop "
                          "(scale=") +
                  ScaleName(scale) + ")");

  const UncertainDatabase db = MakeUncertainQuest(scale);
  const std::vector<std::size_t> grid = ThresholdGrid(db.size());
  const std::vector<MiningRequest> requests = MakeWorkload(grid);
  std::printf("\n[T20I10D30KP40-like] %zu transactions, %zu requests "
              "(MPFCI+PFI interleaved, min_sup %zu..%zu submitted "
              "descending)\n",
              db.size(), requests.size(), grid.front(), grid.back());

  // Sequential baseline: an independent cold Mine() per request — index
  // rebuilt and every PrF tail re-derived each time, in submission order.
  std::vector<MiningResult> sequential(requests.size());
  const double sequential_begin = Now();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    sequential[i] = Mine(db, requests[i]);
  }
  const double sequential_seconds = Now() - sequential_begin;

  // Batch: one cold session, one planned MineBatch. Open() is included —
  // the single index build is part of the amortized cost.
  const double batch_begin = Now();
  MiningSession session = MiningSession::Open(db);
  const std::vector<MiningResult> batch = session.MineBatch(requests);
  const double batch_seconds = Now() - batch_begin;

  bool identical = true;
  std::vector<RequestRecord> records(requests.size());
  TablePrinter table;
  table.SetHeader({"algorithm", "min_sup", "itemsets", "seq_s", "batch_s",
                   "shared_dp_hits", "queued_us"});
  for (std::size_t i = 0; i < requests.size(); ++i) {
    RequestRecord& rec = records[i];
    rec.algorithm = AlgorithmName(requests[i].algorithm);
    rec.min_sup = requests[i].params.min_sup;
    rec.itemsets = sequential[i].itemsets.size();
    rec.sequential_seconds = sequential[i].stats.seconds;
    rec.batch_seconds = batch[i].stats.seconds;
    rec.shared_dp_hits = batch[i].stats.shared_dp_hits;
    rec.queued_micros = batch[i].stats.queued_micros;
    if (!SameItemsets(sequential[i], batch[i])) {
      identical = false;
      std::fprintf(stderr, "MISMATCH %s min_sup=%zu\n", rec.algorithm.c_str(),
                   rec.min_sup);
    }
    table.AddRow({rec.algorithm, std::to_string(rec.min_sup),
                  std::to_string(rec.itemsets),
                  bench::FormatSeconds(rec.sequential_seconds),
                  bench::FormatSeconds(rec.batch_seconds),
                  std::to_string(rec.shared_dp_hits),
                  std::to_string(rec.queued_micros)});
  }
  std::printf("%s", table.Render().c_str());

  const std::size_t batch_groups =
      batch.empty() ? 0 : static_cast<std::size_t>(batch[0].stats.batch_groups);
  const double speedup =
      batch_seconds > 0.0 ? sequential_seconds / batch_seconds : 0.0;
  std::printf("\naggregate: sequential %.3fs  batch %.3fs  speedup %.2fx  "
              "(%zu groups)\n",
              sequential_seconds, batch_seconds, speedup, batch_groups);
  const bool fast_enough = batch_seconds <= sequential_seconds / 2.0;
  std::printf("acceptance (batch <= 1/2 sequential): %s\n",
              fast_enough ? "PASS" : "FAIL");
  std::printf("results bit-identical to standalone runs: %s\n",
              identical ? "PASS" : "FAIL");

  WriteJson("BENCH_batch.json", db, records, batch_groups, sequential_seconds,
            batch_seconds, identical);
  return (identical && fast_enough) ? 0 : 1;
}
