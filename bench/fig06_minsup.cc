// Regenerates Fig. 6 (a, b): running time of the five pruning variants
// (MPFCI, -NoCH, -NoSuper, -NoSub, -NoBound) as min_sup varies, plus the
// Table VII feature matrix.
//
// Expected shape (paper): all variants slow down as min_sup decreases;
// MPFCI grows slowest, MPFCI-NoCH sits close to MPFCI (the CH bound
// contributes least), and MPFCI-NoBound is the slowest by a wide margin.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/harness/experiment.h"
#include "src/harness/table_printer.h"
#include "src/harness/variants.h"

namespace pfci {
namespace {

void RunDataset(const char* name, const UncertainDatabase& db,
                BenchScale scale) {
  std::printf("\n[%s] %zu transactions (times in seconds)\n", name,
              db.size());
  TablePrinter table;
  std::vector<std::string> header = {"rel_min_sup"};
  for (AlgorithmVariant variant : PruningVariants()) {
    header.push_back(VariantName(variant));
  }
  header.push_back("num_PFCI");
  table.SetHeader(header);

  const double cap = bench::RuntimeCapSeconds(scale);
  std::vector<bool> capped(PruningVariants().size(), false);
  for (double rel : bench::MinSupSweep(scale)) {
    const MiningParams params = bench::PaperDefaultParams(db, rel);
    std::vector<std::string> row = {std::to_string(rel)};
    std::size_t num_pfci = 0;
    const auto variants = PruningVariants();
    for (std::size_t v = 0; v < variants.size(); ++v) {
      if (capped[v]) {
        row.push_back(">cap");
        continue;
      }
      const MiningResult result = RunVariant(variants[v], db, params);
      row.push_back(bench::FormatSeconds(result.stats.seconds));
      num_pfci = result.itemsets.size();
      if (result.stats.seconds > cap) capped[v] = true;
    }
    row.push_back(std::to_string(num_pfci));
    table.AddRow(row);
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace
}  // namespace pfci

int main() {
  using namespace pfci;
  const BenchScale scale = ScaleFromEnv();
  PrintBanner("Fig. 6 (+ Table VII)",
              std::string("pruning variants w.r.t. min_sup (scale=") +
                  ScaleName(scale) + ")");
  std::printf("\nTable VII — algorithm features:\n%s",
              VariantFeatureTable().c_str());
  RunDataset("Mushroom-like", MakeUncertainMushroom(scale), scale);
  RunDataset("T20I10D30KP40-like", MakeUncertainQuest(scale), scale);
  std::printf(
      "\nExpected shape: MPFCI fastest, MPFCI-NoCH close behind, "
      "MPFCI-NoBound slowest and diverging at low min_sup.\n");
  return 0;
}
