// Ablation: exact DP vs distributional approximations for the frequent
// probability ([3]-style acceleration of PFI mining).
//
// Sweeps the frequency-evaluation mode of the PFI miner and reports
// runtime, exact-DP executions avoided, and result agreement with the
// exact answer — quantifying the speed/accuracy trade behind the related
// work the paper cites.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/pfi_miner.h"
#include "src/harness/experiment.h"
#include "src/harness/table_printer.h"

namespace pfci {
namespace {

void RunDataset(const char* name, const UncertainDatabase& db,
                double rel) {
  const std::size_t min_sup = AbsoluteMinSup(db.size(), rel);
  std::printf("\n[%s] %zu transactions, min_sup=%zu, pft=0.8\n", name,
              db.size(), min_sup);

  // Reference answer with the exact DP.
  std::vector<PfiEntry> exact;
  const double exact_seconds = TimeRun(
      [&] { exact = MinePfi(db, min_sup, 0.8); });

  TablePrinter table;
  table.SetHeader({"mode", "time_s", "found", "precision", "recall"});
  char cell[32];
  for (FrequencyMode mode :
       {FrequencyMode::kExactDp, FrequencyMode::kNormal,
        FrequencyMode::kRefinedNormal, FrequencyMode::kPoisson}) {
    std::vector<PfiEntry> result;
    const double seconds = TimeRun([&] {
      result = MinePfiApproximate(db, min_sup, 0.8, mode);
    });
    std::vector<Itemset> found, truth;
    for (const PfiEntry& entry : result) found.push_back(entry.items);
    for (const PfiEntry& entry : exact) truth.push_back(entry.items);
    std::vector<std::string> row = {FrequencyModeName(mode),
                                    bench::FormatSeconds(seconds),
                                    std::to_string(result.size())};
    std::snprintf(cell, sizeof(cell), "%.4f", ResultPrecision(found, truth));
    row.push_back(cell);
    std::snprintf(cell, sizeof(cell), "%.4f", ResultRecall(found, truth));
    row.push_back(cell);
    table.AddRow(row);
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(exact reference run: %.3fs, %zu PFIs)\n", exact_seconds,
              exact.size());
}

}  // namespace
}  // namespace pfci

int main() {
  using namespace pfci;
  const BenchScale scale = ScaleFromEnv();
  PrintBanner("Ablation C",
              std::string("frequency-evaluation modes (scale=") +
                  ScaleName(scale) + ")");
  RunDataset("Mushroom-like", MakeUncertainMushroom(scale),
             pfci::bench::DefaultRelMinSup(scale, true));
  RunDataset("T20I10D30KP40-like", MakeUncertainQuest(scale),
             pfci::bench::DefaultRelMinSup(scale, false));
  std::printf(
      "\nReading: the normal approximations recover the exact answer "
      "almost perfectly at a fraction of the DP cost; Le Cam's Poisson "
      "approximation degrades on these dense (large-p) datasets, as its "
      "error bound 2*sum(p_i^2) predicts.\n");
  return 0;
}
