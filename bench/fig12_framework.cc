// Regenerates Fig. 12 (a, b): depth-first (MPFCI) vs breadth-first
// (MPFCI-BFS) search frameworks as min_sup varies.
//
// Expected shape (paper): DFS wins consistently — BFS cannot apply the
// superset/subset prunings, materializes whole levels, and re-derives
// tid-lists from level joins.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/harness/experiment.h"
#include "src/harness/table_printer.h"
#include "src/harness/variants.h"

namespace pfci {
namespace {

void RunDataset(const char* name, const UncertainDatabase& db,
                BenchScale scale) {
  std::printf("\n[%s] %zu transactions (times in s)\n", name, db.size());
  TablePrinter table;
  table.SetHeader({"rel_min_sup", "MPFCI(DFS)", "MPFCI-BFS", "num_PFCI",
                   "dfs_nodes", "bfs_nodes"});
  for (double rel : bench::MinSupSweep(scale)) {
    const MiningParams params = bench::PaperDefaultParams(db, rel);
    const MiningResult dfs = RunVariant(AlgorithmVariant::kMpfci, db, params);
    const MiningResult bfs = RunVariant(AlgorithmVariant::kBfs, db, params);
    table.AddRow({std::to_string(rel),
                  bench::FormatSeconds(dfs.stats.seconds),
                  bench::FormatSeconds(bfs.stats.seconds),
                  std::to_string(dfs.itemsets.size()),
                  std::to_string(dfs.stats.nodes_visited),
                  std::to_string(bfs.stats.nodes_visited)});
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace
}  // namespace pfci

int main() {
  using namespace pfci;
  const BenchScale scale = ScaleFromEnv();
  PrintBanner("Fig. 12", std::string("DFS vs BFS framework (scale=") +
                             ScaleName(scale) + ")");
  RunDataset("Mushroom-like", MakeUncertainMushroom(scale), scale);
  RunDataset("T20I10D30KP40-like", MakeUncertainQuest(scale), scale);
  std::printf(
      "\nExpected shape: DFS at or below BFS at every point, with the gap "
      "widening as min_sup decreases.\n");
  return 0;
}
