// Regenerates Fig. 10 (a, b): compression quality — the number of frequent
// itemsets (FI), frequent closed itemsets (FCI), probabilistic frequent
// itemsets (PFI) and probabilistic frequent closed itemsets (PFCI) as
// min_sup varies, under two Gaussian probability assignments on the
// Mushroom-like dataset.
//
// FI/FCI come from the exact-data miners (FP-growth / closed miner); PFI
// from the DP-based PFI miner; PFCI from MPFCI — matching the paper's
// FP-growth / Closet+ / TODIS / MPFCI quartet.
//
// Expected shape (paper): FCI/FI and PFCI/PFI both shrink sharply as
// min_sup decreases (closed mining compresses probabilistic results as
// well as it compresses exact ones); the low-mean/high-variance setting
// (b) yields fewer probabilistic itemsets and weaker compression than the
// high-mean/low-variance setting (a).
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/mine.h"
#include "src/core/pfi_miner.h"
#include "src/exact/closed_miner.h"
#include "src/exact/fp_growth.h"
#include "src/harness/experiment.h"
#include "src/harness/table_printer.h"

namespace pfci {
namespace {

// Bench runs go through the Mine() front door (the free-function wrappers
// are deprecated).
MiningResult MineMpfciViaRequest(const UncertainDatabase& db,
                                 const MiningParams& params) {
  MiningRequest request;
  request.algorithm = Algorithm::kMpfci;
  request.params = params;
  return Mine(db, request);
}

void RunSetting(const char* name, double mean, double spread,
                BenchScale scale) {
  const TransactionDatabase exact = MakeExactMushroom(scale);
  const UncertainDatabase uncertain =
      MakeUncertainMushroom(scale, mean, spread);
  std::printf("\n[%s] mean=%.1f spread=%.2f, %zu transactions\n", name, mean,
              spread, exact.size());

  TablePrinter table;
  table.SetHeader({"rel_min_sup", "FI", "FCI", "PFI", "PFCI", "FCI/FI",
                   "PFCI/PFI"});
  // Paper sweeps 0.1 .. 0.3 in this experiment.
  const std::vector<double> sweep =
      scale == BenchScale::kFull
          ? std::vector<double>{0.3, 0.25, 0.2, 0.15, 0.1}
          : std::vector<double>{0.3, 0.2, 0.15, 0.1};
  for (double rel : sweep) {
    const std::size_t min_sup = AbsoluteMinSup(exact.size(), rel);
    std::size_t num_fi = 0;
    FpGrowth(exact, min_sup,
             [&num_fi](const Itemset&, std::size_t) { ++num_fi; });
    std::size_t num_fci = 0;
    MineClosedItemsetsInto(
        exact, min_sup, [&num_fci](const Itemset&, std::size_t) { ++num_fci; });

    MiningParams params = bench::PaperDefaultParams(uncertain, rel);
    const std::size_t num_pfi =
        MinePfi(uncertain, params.min_sup, params.pfct).size();
    const std::size_t num_pfci =
        MineMpfciViaRequest(uncertain, params).itemsets.size();

    char fci_ratio[32], pfci_ratio[32];
    std::snprintf(fci_ratio, sizeof(fci_ratio), "%.3f",
                  num_fi ? static_cast<double>(num_fci) / num_fi : 0.0);
    std::snprintf(pfci_ratio, sizeof(pfci_ratio), "%.3f",
                  num_pfi ? static_cast<double>(num_pfci) / num_pfi : 0.0);
    table.AddRow({std::to_string(rel), std::to_string(num_fi),
                  std::to_string(num_fci), std::to_string(num_pfi),
                  std::to_string(num_pfci), fci_ratio, pfci_ratio});
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace
}  // namespace pfci

int main() {
  using namespace pfci;
  const BenchScale scale = ScaleFromEnv();
  PrintBanner("Fig. 10",
              std::string("compression quality w.r.t. min_sup (scale=") +
                  ScaleName(scale) + ")");
  RunSetting("(a) high mean / low variance", 0.8, 0.1, scale);
  RunSetting("(b) low mean / high variance", 0.5, 0.25, scale);
  std::printf(
      "\nExpected shape: PFCI/PFI tracks FCI/FI (strong compression, "
      "stronger at low min_sup); setting (b) has fewer probabilistic "
      "itemsets and weaker compression than (a).\n");
  return 0;
}
