// Regenerates Table VIII: characteristics of the experimental datasets,
// at the active bench scale, next to the paper's reference numbers.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/data/database_stats.h"
#include "src/harness/experiment.h"
#include "src/harness/table_printer.h"

int main() {
  using namespace pfci;
  const BenchScale scale = ScaleFromEnv();
  PrintBanner("Table VIII", std::string("dataset characteristics (scale=") +
                                ScaleName(scale) + ")");

  TablePrinter table;
  table.SetHeader({"dataset", "transactions", "items", "avg_len", "max_len",
                   "mean_prob", "stddev_prob"});
  const auto add = [&table](const char* name, const UncertainDatabase& db) {
    const DatabaseStats stats = ComputeStats(db);
    char avg[32], mean[32], sd[32];
    snprintf(avg, sizeof(avg), "%.2f", stats.avg_length);
    snprintf(mean, sizeof(mean), "%.3f", stats.mean_prob);
    snprintf(sd, sizeof(sd), "%.3f", stats.stddev_prob);
    table.AddRow({name, std::to_string(stats.num_transactions),
                  std::to_string(stats.num_items), avg,
                  std::to_string(stats.max_length), mean, sd});
  };
  add("Mushroom-like (Gauss .5/.25)", MakeUncertainMushroom(scale));
  add("T20I10D30KP40-like (Gauss .8/.1)", MakeUncertainQuest(scale));
  std::printf("%s", table.Render().c_str());

  std::printf(
      "\nPaper reference (Table VIII, full scale):\n"
      "  Mushroom:       8124 transactions, 119 items, avg len 23, max 23\n"
      "  T20I10D30KP40: 30000 transactions,  40 items, avg len 20\n"
      "Run with PFCI_BENCH_SCALE=full to regenerate at paper scale.\n");
  return 0;
}
