// TidSet kernel microbenchmark: per-op cost of the sparse (sorted vector)
// and dense (bitmap) representations across a density x universe sweep,
// plus the galloping skewed-intersection case. Prints a table and emits
// BENCH_tidset.json (one object per measurement) so the perf trajectory
// of the data layer is machine-readable across commits.
//
// On any machine the interesting ratio is ns/op dense vs sparse at the
// same density: the adaptive policy's 1/16 threshold should sit near the
// crossover. PFCI_BENCH_SCALE=full multiplies the repetition budget.
#include <cstdio>
#include <cstdint>
#include <string>
#include <vector>

#include "src/data/tidlist.h"
#include "src/data/tidset.h"
#include "src/harness/dataset_factory.h"
#include "src/harness/table_printer.h"
#include "src/util/random.h"
#include "src/util/stopwatch.h"
#include "src/util/string_util.h"

namespace pfci {
namespace {

TidList RandomTids(std::size_t universe, double density, Rng& rng) {
  TidList tids;
  for (Tid t = 0; t < universe; ++t) {
    if (rng.NextBernoulli(density)) tids.push_back(t);
  }
  return tids;
}

TidSetPolicy Forced(TidSetMode mode) {
  TidSetPolicy policy;
  policy.mode = mode;
  return policy;
}

std::string FixedPoint(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

struct Measurement {
  std::string op;
  std::size_t universe;
  double density;
  const char* mode;
  double ns_per_op;
  std::size_t result_size;
};

std::vector<Measurement> g_measurements;
std::uint64_t g_sink = 0;  // Defeats dead-code elimination.

/// Times `body` (which must fold its result into g_sink) over `reps`
/// repetitions and records one measurement row.
template <typename Body>
void Measure(const std::string& op, std::size_t universe, double density,
             const char* mode, std::size_t reps, std::size_t result_size,
             Body&& body) {
  // One warmup pass, then the timed loop.
  body();
  Stopwatch timer;
  for (std::size_t r = 0; r < reps; ++r) body();
  const double ns =
      timer.ElapsedSeconds() * 1e9 / static_cast<double>(reps);
  g_measurements.push_back(
      Measurement{op, universe, density, mode, ns, result_size});
}

void SweepPair(std::size_t universe, double density, std::size_t reps,
               Rng& rng) {
  const TidList a_tids = RandomTids(universe, density, rng);
  const TidList b_tids = RandomTids(universe, density, rng);
  for (const TidSetMode mode : {TidSetMode::kSparse, TidSetMode::kDense}) {
    const TidSet a(a_tids, universe, Forced(mode));
    const TidSet b(b_tids, universe, Forced(mode));
    const char* name = TidSetModeName(mode);
    const std::size_t isize = IntersectSize(a, b);
    Measure("intersect_size", universe, density, name, reps, isize,
            [&] { g_sink += IntersectSize(a, b); });
    Measure("intersect", universe, density, name, reps, isize,
            [&] { g_sink += Intersect(a, b).size(); });
    Measure("difference", universe, density, name, reps, a.size() - isize,
            [&] { g_sink += Difference(a, b).size(); });
    Measure("subset", universe, density, name, reps, isize,
            [&] { g_sink += IsSubsetOf(a, b) ? 1 : 0; });
  }
}

/// The galloping case: |small| * 32 <= |big|, both sparse. The merge
/// baseline is what the same sizes cost through the dense bitmap (scan of
/// the whole universe) — galloping should win by a wide margin.
void SweepSkew(std::size_t universe, std::size_t reps, Rng& rng) {
  const double big_density = 0.5;
  const double small_density = big_density / 64.0;  // ~128x size skew.
  const TidList big_tids = RandomTids(universe, big_density, rng);
  const TidList small_tids = RandomTids(universe, small_density, rng);
  for (const TidSetMode mode : {TidSetMode::kSparse, TidSetMode::kDense}) {
    const TidSet big(big_tids, universe, Forced(mode));
    const TidSet small_set(small_tids, universe, Forced(mode));
    const std::size_t isize = IntersectSize(small_set, big);
    Measure("intersect_skew", universe, small_density, TidSetModeName(mode),
            reps, isize, [&] { g_sink += IntersectSize(small_set, big); });
  }
}

void WriteJson(const char* path) {
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(out, "[\n");
  for (std::size_t i = 0; i < g_measurements.size(); ++i) {
    const Measurement& m = g_measurements[i];
    std::fprintf(out,
                 "  {\"op\": \"%s\", \"universe\": %zu, \"density\": %s, "
                 "\"mode\": \"%s\", \"ns_per_op\": %s, "
                 "\"result_size\": %zu}%s\n",
                 m.op.c_str(), m.universe, FormatDouble(m.density, 6).c_str(),
                 m.mode, FixedPoint(m.ns_per_op, 2).c_str(), m.result_size,
                 i + 1 < g_measurements.size() ? "," : "");
  }
  std::fprintf(out, "]\n");
  std::fclose(out);
  std::printf("\nwrote %s (%zu measurements)\n", path, g_measurements.size());
}

}  // namespace
}  // namespace pfci

int main() {
  using namespace pfci;
  const BenchScale scale = ScaleFromEnv();
  const std::size_t budget =
      scale == BenchScale::kFull ? 64u << 20 : 8u << 20;
  std::printf("TidSet op microbenchmark (scale=%s)\n", ScaleName(scale));

  Rng rng(20260806);
  const std::size_t universes[] = {1024, 8192, 65536};
  // Densities straddle the adaptive threshold (1/16 = 0.0625).
  const double densities[] = {0.01, 0.03, 0.0625, 0.125, 0.25, 0.5};
  for (const std::size_t universe : universes) {
    for (const double density : densities) {
      // Keep reps * universe roughly constant so every row costs alike.
      const std::size_t reps = budget / universe;
      SweepPair(universe, density, reps, rng);
    }
    SweepSkew(universe, budget / universe, rng);
  }

  TablePrinter table;
  table.SetHeader(
      {"op", "universe", "density", "mode", "ns/op", "result_size"});
  for (const Measurement& m : g_measurements) {
    table.AddRow({m.op, std::to_string(m.universe),
                  FormatDouble(m.density, 4), m.mode,
                  FixedPoint(m.ns_per_op, 1),
                  std::to_string(m.result_size)});
  }
  std::printf("%s", table.Render().c_str());
  std::printf("(sink=%llu)\n", static_cast<unsigned long long>(g_sink));
  WriteJson("BENCH_tidset.json");
  return 0;
}
