// Regenerates Fig. 8 (a, b): running time of the five pruning variants as
// the ApproxFCP relative tolerance epsilon varies.
//
// Expected shape (paper): the four bound-equipped variants are flat in
// epsilon (they rarely sample); MPFCI-NoBound slows down as epsilon
// shrinks because the sample count scales with 1/epsilon^2.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/harness/experiment.h"
#include "src/harness/table_printer.h"
#include "src/harness/variants.h"

namespace pfci {
namespace {

void RunDataset(const char* name, const UncertainDatabase& db,
                BenchScale scale, bool mushroom) {
  const double rel = bench::DefaultRelMinSup(scale, mushroom);
  std::printf("\n[%s] %zu transactions, rel_min_sup=%.2f (times in s)\n",
              name, db.size(), rel);
  TablePrinter table;
  std::vector<std::string> header = {"epsilon"};
  for (AlgorithmVariant variant : PruningVariants()) {
    header.push_back(VariantName(variant));
  }
  table.SetHeader(header);

  for (double epsilon : bench::ToleranceSweep()) {
    MiningParams params = bench::PaperDefaultParams(db, rel);
    params.epsilon = epsilon;
    std::vector<std::string> row = {std::to_string(epsilon)};
    for (AlgorithmVariant variant : PruningVariants()) {
      const MiningResult result = RunVariant(variant, db, params);
      row.push_back(bench::FormatSeconds(result.stats.seconds));
    }
    table.AddRow(row);
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace
}  // namespace pfci

int main() {
  using namespace pfci;
  const BenchScale scale = ScaleFromEnv();
  PrintBanner("Fig. 8",
              std::string("pruning variants w.r.t. epsilon (scale=") +
                  ScaleName(scale) + ")");
  RunDataset("Mushroom-like", MakeUncertainMushroom(scale), scale, true);
  RunDataset("T20I10D30KP40-like", MakeUncertainQuest(scale), scale, false);
  std::printf(
      "\nExpected shape: only MPFCI-NoBound reacts to epsilon "
      "(cost ~ 1/eps^2); all other variants flat.\n");
  return 0;
}
