// Shared configuration for the figure-regeneration binaries.
//
// Every binary honours PFCI_BENCH_SCALE (quick|full, default quick): quick
// shrinks the datasets and sweep grids so the whole bench directory runs
// in minutes on a laptop; full matches the paper's configuration
// (Table VIII datasets, paper sweep grids) and can take hours, exactly
// like the original experiments.
#ifndef PFCI_BENCH_BENCH_COMMON_H_
#define PFCI_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "src/core/mining_params.h"
#include "src/data/uncertain_database.h"
#include "src/harness/dataset_factory.h"

namespace pfci::bench {

/// Paper defaults: pfct = 0.8, epsilon = delta = 0.1.
inline MiningParams PaperDefaultParams(const UncertainDatabase& db,
                                       double rel_min_sup) {
  MiningParams params;
  params.min_sup = AbsoluteMinSup(db.size(), rel_min_sup);
  params.pfct = 0.8;
  params.epsilon = 0.1;
  params.delta = 0.1;
  // Paper-faithful checking: ApproxFCP is the only fallback checker (the
  // library's exact inclusion-exclusion shortcut is disabled so that the
  // bounding-pruning behaviour matches the paper's Fig. 1 pipeline).
  params.exact_event_limit = 0;
  return params;
}

/// The default (median) relative min_sup of the runtime experiments.
/// Paper: 0.4 on Mushroom, 0.3 on T20I10D30KP40; the quick datasets are
/// smaller, so their interesting regime sits lower.
inline double DefaultRelMinSup(BenchScale scale, bool mushroom) {
  if (scale == BenchScale::kFull) return mushroom ? 0.4 : 0.3;
  return mushroom ? 0.15 : 0.15;
}

/// min_sup sweep grid (paper: 0.2 .. 0.6).
inline std::vector<double> MinSupSweep(BenchScale scale) {
  if (scale == BenchScale::kFull) return {0.6, 0.5, 0.4, 0.3, 0.2};
  return {0.4, 0.3, 0.2, 0.15, 0.125};
}

/// pfct sweep grid (paper: 0.5 .. 0.9).
inline std::vector<double> PfctSweep() { return {0.5, 0.6, 0.7, 0.8, 0.9}; }

/// epsilon / delta sweep grid (paper: 0.05 .. 0.3).
inline std::vector<double> ToleranceSweep() {
  return {0.05, 0.1, 0.15, 0.2, 0.25, 0.3};
}

/// Per-run wall-clock cap: a sweep point whose previous run exceeded this
/// is skipped and reported as ">cap" (the paper did the same at 1 hour).
inline double RuntimeCapSeconds(BenchScale scale) {
  return scale == BenchScale::kFull ? 3600.0 : 60.0;
}

inline std::string FormatSeconds(double seconds) {
  char buffer[32];
  snprintf(buffer, sizeof(buffer), "%.3f", seconds);
  return buffer;
}

}  // namespace pfci::bench

#endif  // PFCI_BENCH_BENCH_COMMON_H_
