// Regenerates Fig. 9 (a, b): running time of the five pruning variants as
// the ApproxFCP confidence parameter delta varies.
//
// Expected shape (paper): like Fig. 8 but weaker — the sample count only
// scales with ln(2/delta), so even MPFCI-NoBound moves mildly.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/harness/experiment.h"
#include "src/harness/table_printer.h"
#include "src/harness/variants.h"

namespace pfci {
namespace {

void RunDataset(const char* name, const UncertainDatabase& db,
                BenchScale scale, bool mushroom) {
  const double rel = bench::DefaultRelMinSup(scale, mushroom);
  std::printf("\n[%s] %zu transactions, rel_min_sup=%.2f (times in s)\n",
              name, db.size(), rel);
  TablePrinter table;
  std::vector<std::string> header = {"delta"};
  for (AlgorithmVariant variant : PruningVariants()) {
    header.push_back(VariantName(variant));
  }
  table.SetHeader(header);

  for (double delta : bench::ToleranceSweep()) {
    MiningParams params = bench::PaperDefaultParams(db, rel);
    params.delta = delta;
    std::vector<std::string> row = {std::to_string(delta)};
    for (AlgorithmVariant variant : PruningVariants()) {
      const MiningResult result = RunVariant(variant, db, params);
      row.push_back(bench::FormatSeconds(result.stats.seconds));
    }
    table.AddRow(row);
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace
}  // namespace pfci

int main() {
  using namespace pfci;
  const BenchScale scale = ScaleFromEnv();
  PrintBanner("Fig. 9", std::string("pruning variants w.r.t. delta (scale=") +
                            ScaleName(scale) + ")");
  RunDataset("Mushroom-like", MakeUncertainMushroom(scale), scale, true);
  RunDataset("T20I10D30KP40-like", MakeUncertainQuest(scale), scale, false);
  std::printf(
      "\nExpected shape: only MPFCI-NoBound reacts, and more weakly than "
      "in Fig. 8 (cost ~ ln(2/delta)).\n");
  return 0;
}
