// Micro-benchmarks of the library's primitives (google-benchmark): the
// Poisson-binomial DP, tid-list intersection, conditional sampling,
// extension-event construction, FCP bounds vs exact vs sampled, and the
// exact miners. These quantify the constants behind the figure-level
// results (e.g. why Lemma 4.4's O(m^2) bounds beat one ApproxFCP call).
#include <benchmark/benchmark.h>

#include <memory>

#include "src/core/extension_events.h"
#include "src/core/fcp_bounds.h"
#include "src/core/fcp_exact.h"
#include "src/core/fcp_sampler.h"
#include "src/core/frequent_probability.h"
#include "src/data/vertical_index.h"
#include "src/exact/closed_miner.h"
#include "src/exact/fp_growth.h"
#include "src/harness/dataset_factory.h"
#include "src/prob/conditional_sampler.h"
#include "src/prob/poisson_binomial.h"
#include "src/util/random.h"
#include "src/util/runtime.h"

namespace pfci {
namespace {

std::vector<double> RandomProbs(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> probs(n);
  for (double& p : probs) p = rng.NextDouble();
  return probs;
}

void BM_PoissonBinomialTail(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t threshold = n / 4;
  const std::vector<double> probs = RandomProbs(n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PoissonBinomialTailAtLeast(probs, threshold));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PoissonBinomialTail)->Range(64, 8192)->Complexity();

void BM_PoissonBinomialPmf(benchmark::State& state) {
  const std::vector<double> probs =
      RandomProbs(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PoissonBinomialPmf(probs));
  }
}
BENCHMARK(BM_PoissonBinomialPmf)->Range(64, 2048);

void BM_TidListIntersect(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  TidList a, b;
  for (Tid t = 0; t < n; ++t) {
    if (rng.NextBernoulli(0.6)) a.push_back(t);
    if (rng.NextBernoulli(0.6)) b.push_back(t);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectTids(a, b));
  }
}
BENCHMARK(BM_TidListIntersect)->Range(256, 65536);

void BM_ConditionalSamplerBuild(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> probs = RandomProbs(n, 4);
  for (auto _ : state) {
    const ConditionalBernoulliSampler sampler(probs, n / 4);
    benchmark::DoNotOptimize(sampler.condition_probability());
  }
}
BENCHMARK(BM_ConditionalSamplerBuild)->Range(64, 2048);

void BM_ConditionalSamplerDraw(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> probs = RandomProbs(n, 5);
  const ConditionalBernoulliSampler sampler(probs, n / 4);
  Rng rng(6);
  std::vector<std::uint8_t> out;
  for (auto _ : state) {
    sampler.Sample(rng, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_ConditionalSamplerDraw)->Range(64, 2048);

/// Fixture for the FCP benchmarks: a database small enough that extension
/// events retain non-negligible probabilities (on large databases the
/// forced-absence products underflow and every event vanishes, which
/// would make these benchmarks measure the empty case).
struct FcpFixture {
  FcpFixture() {
    Rng rng(99);
    for (int t = 0; t < 48; ++t) {
      std::vector<Item> items = {0};
      for (Item i = 1; i < 10; ++i) {
        if (rng.NextBernoulli(0.7)) items.push_back(i);
      }
      db.Add(Itemset(std::move(items)), 0.3 + 0.6 * rng.NextDouble());
    }
    index = std::make_unique<VerticalIndex>(db);
    freq = std::make_unique<FrequentProbability>(*index, 12);
  }

  UncertainDatabase db;
  std::unique_ptr<VerticalIndex> index;
  std::unique_ptr<FrequentProbability> freq;
};

FcpFixture& Fixture() {
  static FcpFixture* fixture = new FcpFixture();
  return *fixture;
}

void BM_ExtensionEventsBuild(benchmark::State& state) {
  FcpFixture& f = Fixture();
  const Itemset x{0};
  const TidSet tids = f.index->TidsOf(x);
  for (auto _ : state) {
    const ExtensionEventSet events(*f.index, *f.freq, x, tids);
    benchmark::DoNotOptimize(events.size());
  }
}
BENCHMARK(BM_ExtensionEventsBuild);

void BM_FcpBounds(benchmark::State& state) {
  FcpFixture& f = Fixture();
  const Itemset x{0};
  const TidSet tids = f.index->TidsOf(x);
  const double pr_f = f.freq->PrF(tids);
  const ExtensionEventSet events(*f.index, *f.freq, x, tids);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeFcpBounds(pr_f, events));
  }
}
BENCHMARK(BM_FcpBounds);

void BM_FcpSampled(benchmark::State& state) {
  FcpFixture& f = Fixture();
  const Itemset x{0};
  const TidSet tids = f.index->TidsOf(x);
  const double pr_f = f.freq->PrF(tids);
  const ExtensionEventSet events(*f.index, *f.freq, x, tids);
  Rng rng(7);
  const double epsilon = 1.0 / static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApproxFcp(pr_f, events, epsilon, 0.1, rng));
  }
}
BENCHMARK(BM_FcpSampled)->Arg(4)->Arg(10)->Arg(20);

void BM_FpGrowthQuickMushroom(benchmark::State& state) {
  const TransactionDatabase db = MakeExactMushroom(BenchScale::kQuick);
  const std::size_t min_sup = AbsoluteMinSup(db.size(), 0.2);
  for (auto _ : state) {
    std::size_t count = 0;
    FpGrowth(db, min_sup, [&count](const Itemset&, std::size_t) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_FpGrowthQuickMushroom);

void BM_ClosedMinerQuickMushroom(benchmark::State& state) {
  const TransactionDatabase db = MakeExactMushroom(BenchScale::kQuick);
  const std::size_t min_sup = AbsoluteMinSup(db.size(), 0.2);
  for (auto _ : state) {
    std::size_t count = 0;
    MineClosedItemsetsInto(
        db, min_sup, [&count](const Itemset&, std::size_t) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_ClosedMinerQuickMushroom);

// The per-node Checkpoint() under a far-away deadline: the hot-loop
// configuration every budgeted run pays. The exponential poll stride
// (src/util/runtime.h) amortizes the steady-clock syscall to at most one
// read per kClockCheckStride calls; `clock_poll_ratio` reports the
// measured polls-per-checkpoint and the benchmark FAILS (SkipWithError)
// if the ratio regresses above 1/16 — twice the steady-state 1/32, so
// the warm-up polls of short runs never trip it.
void BM_RunControllerCheckpoint(benchmark::State& state) {
  RunBudget budget;
  budget.deadline_seconds = 3600.0;
  RunController controller(budget, nullptr);
  std::uint64_t calls = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(controller.Checkpoint());
    ++calls;
  }
  const double ratio = calls == 0 ? 0.0
                                  : static_cast<double>(controller.clock_polls()) /
                                        static_cast<double>(calls);
  state.counters["clock_poll_ratio"] = ratio;
  if (calls > 1024 && ratio > 1.0 / 16.0) {
    state.SkipWithError(
        "clock-poll ratio regressed: Checkpoint() is reading the clock "
        "more than once per 16 calls (expected <= 1/32 steady-state)");
  }
}
BENCHMARK(BM_RunControllerCheckpoint);

}  // namespace
}  // namespace pfci

BENCHMARK_MAIN();
