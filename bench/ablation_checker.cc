// Ablation: the engine's checker policy (DESIGN.md §2.7).
//
// The library deviates from the paper in one documented way: below
// `exact_event_limit` active events, the frequent non-closed probability
// is computed exactly by inclusion-exclusion instead of sampling. This
// bench sweeps that limit (0 = paper-faithful, always sample when bounds
// don't decide) and shows the time/accuracy trade: the exact path is both
// faster and noise-free until the 2^m term takes over.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/mine.h"
#include "src/harness/experiment.h"
#include "src/harness/table_printer.h"

int main() {
  using namespace pfci;
  const BenchScale scale = ScaleFromEnv();
  PrintBanner("Ablation B",
              std::string("exact-IE vs sampling checker (scale=") +
                  ScaleName(scale) + ")");
  const UncertainDatabase db = MakeUncertainMushroom(scale);
  const double rel =
      pfci::bench::DefaultRelMinSup(scale, /*mushroom=*/true);
  std::printf("[Mushroom-like] %zu transactions, rel_min_sup=%.2f, "
              "bounds DISABLED so every node hits the checker\n",
              db.size(), rel);

  TablePrinter table;
  table.SetHeader({"exact_event_limit", "time_s", "exactFCP", "sampledFCP",
                   "samples", "num_PFCI"});
  for (std::size_t limit : {std::size_t{0}, std::size_t{4}, std::size_t{8},
                            std::size_t{12}, std::size_t{16},
                            std::size_t{20}}) {
    MiningParams params = pfci::bench::PaperDefaultParams(db, rel);
    params.pruning.fcp_bounds = false;  // Force every node to the checker.
    params.exact_event_limit = limit;
    MiningRequest request;
    request.algorithm = Algorithm::kMpfci;
    request.params = params;
    const MiningResult r = Mine(db, request);
    table.AddRow({std::to_string(limit),
                  pfci::bench::FormatSeconds(r.stats.seconds),
                  std::to_string(r.stats.exact_fcp_computations),
                  std::to_string(r.stats.sampled_fcp_computations),
                  std::to_string(r.stats.total_samples),
                  std::to_string(r.itemsets.size())});
  }
  std::printf("%s", table.Render().c_str());
  std::printf(
      "\nReading: raising the limit converts sampled checks (noisy, "
      "~1/eps^2 samples each) into exact inclusion-exclusion checks; the "
      "result set stabilizes and the run accelerates until 2^m dominates.\n");
  return 0;
}
