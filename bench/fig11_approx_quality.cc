// Regenerates Fig. 11 (a, b): approximation quality of the mining result
// as epsilon and delta vary — precision and recall of the result set
// against the "true" set, which (as in the paper, where the problem is
// #P-hard) is the result at epsilon = delta = 0.01.
//
// Sampling is forced (exact shortcut and bound-clamping would otherwise
// make every run exact and the curves trivially flat at 1).
//
// Expected shape (paper): recall stays ~1 across both sweeps; precision
// degrades slowly as epsilon grows and is nearly insensitive to delta.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "src/core/mine.h"
#include "src/harness/experiment.h"
#include "src/harness/table_printer.h"

namespace pfci {
namespace {

// pfct sits inside the decision-dense band of the fcp distribution (the
// default 0.8 leaves no borderline itemsets on the quick dataset, which
// would pin both curves at 1.0 regardless of the tolerances).
constexpr double kQualityPfct = 0.7;

MiningParams SamplingParams(const UncertainDatabase& db, double rel,
                            double epsilon, double delta,
                            std::uint64_t rep) {
  MiningParams params = bench::PaperDefaultParams(db, rel);
  params.pfct = kQualityPfct;
  params.epsilon = epsilon;
  params.delta = delta;
  params.force_sampling = true;
  // The Lemma 4.4 bounds are disabled: on these datasets they are tight
  // enough to decide every itemset outright, which would make the curves
  // trivially flat. With bounds off, every surviving itemset is decided
  // by its sampled estimate, as in the paper's quality study. The seed
  // varies with the tolerance so runs are independent.
  params.pruning.fcp_bounds = false;
  params.seed = 7 + static_cast<std::uint64_t>(epsilon * 1000) * 1000003 +
                static_cast<std::uint64_t>(delta * 1000) * 7919 + rep;
  return params;
}

constexpr int kRepetitions = 3;

// Bench runs go through the Mine() front door (the free-function wrappers
// are deprecated).
MiningResult MineMpfciViaRequest(const UncertainDatabase& db,
                                 const MiningParams& params) {
  MiningRequest request;
  request.algorithm = Algorithm::kMpfci;
  request.params = params;
  return Mine(db, request);
}

}  // namespace
}  // namespace pfci

int main() {
  using namespace pfci;
  const BenchScale scale = ScaleFromEnv();
  PrintBanner("Fig. 11",
              std::string("approximation quality (scale=") +
                  ScaleName(scale) + ")");
  const UncertainDatabase db = MakeUncertainMushroom(scale);
  const double rel = bench::DefaultRelMinSup(scale, /*mushroom=*/true);
  std::printf("[Mushroom-like] %zu transactions, rel_min_sup=%.2f\n",
              db.size(), rel);

  // Ground truth. The paper, lacking an exact checker, used the result at
  // epsilon = delta = 0.01; this library has the exact
  // inclusion-exclusion engine, so the truth set comes from the default
  // (bounds + exact) pipeline instead — strictly more accurate and far
  // cheaper than a 0.01-tolerance sampling run.
  MiningParams truth_params = bench::PaperDefaultParams(db, rel);
  truth_params.pfct = kQualityPfct;
  truth_params.exact_event_limit = 25;
  const MiningResult truth_result = MineMpfciViaRequest(db, truth_params);
  const std::vector<Itemset> truth = ItemsetsOf(truth_result);
  std::printf("truth set (exact engine, pfct=%.2f): %zu itemsets\n\n",
              kQualityPfct, truth.size());

  // In addition to precision/recall, report the estimation error of the
  // sampled PrFC values against the exact engine's values: if the
  // result-set metrics sit at 1.0 (the estimator is far inside its
  // guarantee on this data), the error columns still expose the epsilon
  // dependence the experiment is about.
  const auto sweep_row = [&](double epsilon, double delta) {
    double precision = 0.0, recall = 0.0, found_avg = 0.0;
    double mean_err = 0.0, max_err = 0.0;
    for (int rep = 0; rep < kRepetitions; ++rep) {
      const MiningResult result = MineMpfciViaRequest(
          db, SamplingParams(db, rel, epsilon, delta,
                             static_cast<std::uint64_t>(rep)));
      const std::vector<Itemset> found = ItemsetsOf(result);
      precision += ResultPrecision(found, truth);
      recall += ResultRecall(found, truth);
      found_avg += static_cast<double>(found.size());
      double err_sum = 0.0;
      std::size_t matched = 0;
      for (const PfciEntry& entry : result.itemsets) {
        const PfciEntry* exact = truth_result.Find(entry.items);
        if (exact == nullptr) continue;
        const double err = std::abs(entry.fcp - exact->fcp);
        err_sum += err;
        max_err = std::max(max_err, err);
        ++matched;
      }
      if (matched > 0) mean_err += err_sum / static_cast<double>(matched);
    }
    char p[16], r[16], f[16], me[16], xe[16];
    std::snprintf(p, sizeof(p), "%.4f", precision / kRepetitions);
    std::snprintf(r, sizeof(r), "%.4f", recall / kRepetitions);
    std::snprintf(f, sizeof(f), "%.1f", found_avg / kRepetitions);
    std::snprintf(me, sizeof(me), "%.2e", mean_err / kRepetitions);
    std::snprintf(xe, sizeof(xe), "%.2e", max_err);
    return std::vector<std::string>{p, r, f, me, xe};
  };

  {
    TablePrinter table;
    table.SetHeader({"epsilon (delta=0.1)", "precision", "recall", "found", "mean|err|", "max|err|"});
    for (double epsilon : bench::ToleranceSweep()) {
      std::vector<std::string> row = {std::to_string(epsilon)};
      for (std::string& cell : sweep_row(epsilon, 0.1)) {
        row.push_back(std::move(cell));
      }
      table.AddRow(row);
    }
    std::printf("(a) varying epsilon (mean of %d runs)\n%s\n", kRepetitions,
                table.Render().c_str());
  }
  {
    TablePrinter table;
    table.SetHeader({"delta (epsilon=0.1)", "precision", "recall", "found", "mean|err|", "max|err|"});
    for (double delta : bench::ToleranceSweep()) {
      std::vector<std::string> row = {std::to_string(delta)};
      for (std::string& cell : sweep_row(0.1, delta)) {
        row.push_back(std::move(cell));
      }
      table.AddRow(row);
    }
    std::printf("(b) varying delta (mean of %d runs)\n%s", kRepetitions,
                table.Render().c_str());
  }
  std::printf(
      "\nExpected shape: recall ~1 throughout; precision dips mildly as "
      "epsilon grows, nearly flat in delta.\n");
  return 0;
}
