// Thread-scaling of the parallel mining engine: wall-clock of Mine() at
// 1, 2, 4, 8 threads on the Fig. 5 workloads (MPFCI and Naive), with the
// determinism contract checked on every run (itemset counts must match
// the single-thread baseline exactly).
//
// Expected shape: near-linear speedup of the Naive stage-2 fan-out and of
// MPFCI's first-level subtree tasks while physical cores last, then flat.
// On a single-core machine every configuration degenerates to ~1.0x (the
// pool only adds scheduling overhead) — the speedup column is only
// meaningful when the hardware reports more than one CPU.
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/core/mine.h"
#include "src/harness/experiment.h"
#include "src/harness/table_printer.h"

namespace pfci {
namespace {

void RunDataset(const char* name, const UncertainDatabase& db,
                Algorithm algorithm, BenchScale scale, bool mushroom) {
  const double rel = bench::DefaultRelMinSup(scale, mushroom);
  MiningRequest request;
  request.params = bench::PaperDefaultParams(db, rel);
  request.algorithm = algorithm;

  std::printf("\n[%s / %s] %zu transactions, min_sup=%zu\n", name,
              AlgorithmName(algorithm), db.size(), request.params.min_sup);
  TablePrinter table;
  table.SetHeader({"threads", "seconds", "speedup", "num_PFCI", "identical"});

  double base_seconds = 0.0;
  std::size_t base_count = 0;
  std::vector<PfciEntry> base_itemsets;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    request.execution.num_threads = threads;
    const MiningResult result = Mine(db, request);
    bool identical = true;
    if (threads == 1) {
      base_seconds = result.stats.seconds;
      base_count = result.itemsets.size();
      base_itemsets = result.itemsets;
    } else {
      identical = result.itemsets.size() == base_count;
      for (std::size_t i = 0; identical && i < base_itemsets.size(); ++i) {
        identical = result.itemsets[i].items == base_itemsets[i].items &&
                    result.itemsets[i].fcp == base_itemsets[i].fcp;
      }
    }
    char speedup[32];
    std::snprintf(speedup, sizeof(speedup), "%.2fx",
                  result.stats.seconds > 0.0
                      ? base_seconds / result.stats.seconds
                      : 0.0);
    table.AddRow({std::to_string(threads),
                  bench::FormatSeconds(result.stats.seconds), speedup,
                  std::to_string(result.itemsets.size()),
                  identical ? "yes" : "NO"});
  }
  std::printf("%s", table.Render().c_str());
}

}  // namespace
}  // namespace pfci

int main() {
  using namespace pfci;
  const BenchScale scale = ScaleFromEnv();
  PrintBanner("Parallel scaling",
              std::string("Mine() thread sweep (scale=") + ScaleName(scale) +
                  ", hardware threads=" +
                  std::to_string(std::thread::hardware_concurrency()) + ")");
  const UncertainDatabase mushroom = MakeUncertainMushroom(scale);
  const UncertainDatabase quest = MakeUncertainQuest(scale);
  RunDataset("Mushroom-like", mushroom, Algorithm::kMpfci, scale,
             /*mushroom=*/true);
  RunDataset("Mushroom-like", mushroom, Algorithm::kNaive, scale,
             /*mushroom=*/true);
  RunDataset("T20I10D30KP40-like", quest, Algorithm::kMpfci, scale,
             /*mushroom=*/false);
  RunDataset("T20I10D30KP40-like", quest, Algorithm::kNaive, scale,
             /*mushroom=*/false);
  std::printf(
      "\nAll rows must report identical=yes: the deterministic execution "
      "policy guarantees bit-identical output for every thread count.\n");
  return 0;
}
