# Empty compiler generated dependencies file for fig10_compression.
# This may be replaced when dependencies are built.
