file(REMOVE_RECURSE
  "../bench/fig12_framework"
  "../bench/fig12_framework.pdb"
  "CMakeFiles/fig12_framework.dir/fig12_framework.cc.o"
  "CMakeFiles/fig12_framework.dir/fig12_framework.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
