# Empty compiler generated dependencies file for fig12_framework.
# This may be replaced when dependencies are built.
