file(REMOVE_RECURSE
  "../bench/fig08_epsilon"
  "../bench/fig08_epsilon.pdb"
  "CMakeFiles/fig08_epsilon.dir/fig08_epsilon.cc.o"
  "CMakeFiles/fig08_epsilon.dir/fig08_epsilon.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_epsilon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
