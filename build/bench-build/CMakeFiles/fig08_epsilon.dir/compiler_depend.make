# Empty compiler generated dependencies file for fig08_epsilon.
# This may be replaced when dependencies are built.
