file(REMOVE_RECURSE
  "../bench/fig07_pfct"
  "../bench/fig07_pfct.pdb"
  "CMakeFiles/fig07_pfct.dir/fig07_pfct.cc.o"
  "CMakeFiles/fig07_pfct.dir/fig07_pfct.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_pfct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
