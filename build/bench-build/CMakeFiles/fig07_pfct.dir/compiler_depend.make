# Empty compiler generated dependencies file for fig07_pfct.
# This may be replaced when dependencies are built.
