file(REMOVE_RECURSE
  "../bench/fig11_approx_quality"
  "../bench/fig11_approx_quality.pdb"
  "CMakeFiles/fig11_approx_quality.dir/fig11_approx_quality.cc.o"
  "CMakeFiles/fig11_approx_quality.dir/fig11_approx_quality.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_approx_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
