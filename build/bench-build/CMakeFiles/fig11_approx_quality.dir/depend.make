# Empty dependencies file for fig11_approx_quality.
# This may be replaced when dependencies are built.
