file(REMOVE_RECURSE
  "../bench/fig06_minsup"
  "../bench/fig06_minsup.pdb"
  "CMakeFiles/fig06_minsup.dir/fig06_minsup.cc.o"
  "CMakeFiles/fig06_minsup.dir/fig06_minsup.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_minsup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
