# Empty compiler generated dependencies file for fig06_minsup.
# This may be replaced when dependencies are built.
