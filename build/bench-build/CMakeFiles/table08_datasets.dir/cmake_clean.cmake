file(REMOVE_RECURSE
  "../bench/table08_datasets"
  "../bench/table08_datasets.pdb"
  "CMakeFiles/table08_datasets.dir/table08_datasets.cc.o"
  "CMakeFiles/table08_datasets.dir/table08_datasets.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table08_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
