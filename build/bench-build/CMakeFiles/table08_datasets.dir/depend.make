# Empty dependencies file for table08_datasets.
# This may be replaced when dependencies are built.
