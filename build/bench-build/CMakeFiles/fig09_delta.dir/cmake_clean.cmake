file(REMOVE_RECURSE
  "../bench/fig09_delta"
  "../bench/fig09_delta.pdb"
  "CMakeFiles/fig09_delta.dir/fig09_delta.cc.o"
  "CMakeFiles/fig09_delta.dir/fig09_delta.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
