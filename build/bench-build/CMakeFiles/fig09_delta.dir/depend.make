# Empty dependencies file for fig09_delta.
# This may be replaced when dependencies are built.
