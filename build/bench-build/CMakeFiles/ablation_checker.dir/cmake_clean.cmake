file(REMOVE_RECURSE
  "../bench/ablation_checker"
  "../bench/ablation_checker.pdb"
  "CMakeFiles/ablation_checker.dir/ablation_checker.cc.o"
  "CMakeFiles/ablation_checker.dir/ablation_checker.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
