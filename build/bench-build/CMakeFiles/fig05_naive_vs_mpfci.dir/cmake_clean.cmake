file(REMOVE_RECURSE
  "../bench/fig05_naive_vs_mpfci"
  "../bench/fig05_naive_vs_mpfci.pdb"
  "CMakeFiles/fig05_naive_vs_mpfci.dir/fig05_naive_vs_mpfci.cc.o"
  "CMakeFiles/fig05_naive_vs_mpfci.dir/fig05_naive_vs_mpfci.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_naive_vs_mpfci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
