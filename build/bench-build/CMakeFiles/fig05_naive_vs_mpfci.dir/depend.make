# Empty dependencies file for fig05_naive_vs_mpfci.
# This may be replaced when dependencies are built.
