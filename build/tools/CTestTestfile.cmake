# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_datagen_quest "/root/repo/build/tools/pfci_datagen" "quest" "/root/repo/build/tools/smoke.utd" "--transactions=200" "--items=16" "--avg-len=6" "--pattern-len=3")
set_tests_properties(tool_datagen_quest PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_datagen_mushroom_exact "/root/repo/build/tools/pfci_datagen" "mushroom" "/root/repo/build/tools/smoke.dat" "--exact" "--transactions=200" "--attributes=8")
set_tests_properties(tool_datagen_mushroom_exact PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_stats "/root/repo/build/tools/pfci_stats" "/root/repo/build/tools/smoke.utd" "--top=5")
set_tests_properties(tool_stats PROPERTIES  DEPENDS "tool_datagen_quest" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
