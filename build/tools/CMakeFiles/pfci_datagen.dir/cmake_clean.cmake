file(REMOVE_RECURSE
  "CMakeFiles/pfci_datagen.dir/pfci_datagen.cc.o"
  "CMakeFiles/pfci_datagen.dir/pfci_datagen.cc.o.d"
  "pfci_datagen"
  "pfci_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfci_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
