# Empty compiler generated dependencies file for pfci_datagen.
# This may be replaced when dependencies are built.
