# Empty dependencies file for pfci_stats.
# This may be replaced when dependencies are built.
