file(REMOVE_RECURSE
  "CMakeFiles/pfci_stats.dir/pfci_stats.cc.o"
  "CMakeFiles/pfci_stats.dir/pfci_stats.cc.o.d"
  "pfci_stats"
  "pfci_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfci_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
