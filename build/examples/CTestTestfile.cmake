# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_traffic_patterns "/root/repo/build/examples/traffic_patterns")
set_tests_properties(example_traffic_patterns PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensor_network "/root/repo/build/examples/sensor_network" "0.2")
set_tests_properties(example_sensor_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compare_semantics "/root/repo/build/examples/compare_semantics")
set_tests_properties(example_compare_semantics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mine_cli_demo "/root/repo/build/examples/mine_cli")
set_tests_properties(example_mine_cli_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stream_monitor "/root/repo/build/examples/stream_monitor")
set_tests_properties(example_stream_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
