file(REMOVE_RECURSE
  "CMakeFiles/traffic_patterns.dir/traffic_patterns.cpp.o"
  "CMakeFiles/traffic_patterns.dir/traffic_patterns.cpp.o.d"
  "traffic_patterns"
  "traffic_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
