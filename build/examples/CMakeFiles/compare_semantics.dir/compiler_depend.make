# Empty compiler generated dependencies file for compare_semantics.
# This may be replaced when dependencies are built.
