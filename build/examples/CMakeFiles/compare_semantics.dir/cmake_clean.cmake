file(REMOVE_RECURSE
  "CMakeFiles/compare_semantics.dir/compare_semantics.cpp.o"
  "CMakeFiles/compare_semantics.dir/compare_semantics.cpp.o.d"
  "compare_semantics"
  "compare_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
