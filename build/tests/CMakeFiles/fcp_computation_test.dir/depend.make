# Empty dependencies file for fcp_computation_test.
# This may be replaced when dependencies are built.
