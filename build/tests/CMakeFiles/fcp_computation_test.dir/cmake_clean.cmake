file(REMOVE_RECURSE
  "CMakeFiles/fcp_computation_test.dir/fcp_computation_test.cc.o"
  "CMakeFiles/fcp_computation_test.dir/fcp_computation_test.cc.o.d"
  "fcp_computation_test"
  "fcp_computation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcp_computation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
