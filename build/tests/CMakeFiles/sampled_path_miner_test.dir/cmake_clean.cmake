file(REMOVE_RECURSE
  "CMakeFiles/sampled_path_miner_test.dir/sampled_path_miner_test.cc.o"
  "CMakeFiles/sampled_path_miner_test.dir/sampled_path_miner_test.cc.o.d"
  "sampled_path_miner_test"
  "sampled_path_miner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampled_path_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
