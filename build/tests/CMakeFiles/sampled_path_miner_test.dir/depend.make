# Empty dependencies file for sampled_path_miner_test.
# This may be replaced when dependencies are built.
