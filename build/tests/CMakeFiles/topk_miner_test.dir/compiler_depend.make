# Empty compiler generated dependencies file for topk_miner_test.
# This may be replaced when dependencies are built.
