# Empty dependencies file for stream_miner_test.
# This may be replaced when dependencies are built.
