file(REMOVE_RECURSE
  "CMakeFiles/stream_miner_test.dir/stream_miner_test.cc.o"
  "CMakeFiles/stream_miner_test.dir/stream_miner_test.cc.o.d"
  "stream_miner_test"
  "stream_miner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
