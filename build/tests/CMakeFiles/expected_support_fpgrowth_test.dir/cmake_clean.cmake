file(REMOVE_RECURSE
  "CMakeFiles/expected_support_fpgrowth_test.dir/expected_support_fpgrowth_test.cc.o"
  "CMakeFiles/expected_support_fpgrowth_test.dir/expected_support_fpgrowth_test.cc.o.d"
  "expected_support_fpgrowth_test"
  "expected_support_fpgrowth_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expected_support_fpgrowth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
