# Empty dependencies file for expected_support_fpgrowth_test.
# This may be replaced when dependencies are built.
