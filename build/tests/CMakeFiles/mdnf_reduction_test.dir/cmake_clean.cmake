file(REMOVE_RECURSE
  "CMakeFiles/mdnf_reduction_test.dir/mdnf_reduction_test.cc.o"
  "CMakeFiles/mdnf_reduction_test.dir/mdnf_reduction_test.cc.o.d"
  "mdnf_reduction_test"
  "mdnf_reduction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdnf_reduction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
