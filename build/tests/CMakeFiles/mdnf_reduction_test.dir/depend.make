# Empty dependencies file for mdnf_reduction_test.
# This may be replaced when dependencies are built.
