# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fpras_guarantee_test.
