# Empty dependencies file for fpras_guarantee_test.
# This may be replaced when dependencies are built.
