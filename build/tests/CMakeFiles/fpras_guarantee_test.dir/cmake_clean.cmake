file(REMOVE_RECURSE
  "CMakeFiles/fpras_guarantee_test.dir/fpras_guarantee_test.cc.o"
  "CMakeFiles/fpras_guarantee_test.dir/fpras_guarantee_test.cc.o.d"
  "fpras_guarantee_test"
  "fpras_guarantee_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpras_guarantee_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
