# Empty compiler generated dependencies file for union_bounds_test.
# This may be replaced when dependencies are built.
