file(REMOVE_RECURSE
  "CMakeFiles/union_bounds_test.dir/union_bounds_test.cc.o"
  "CMakeFiles/union_bounds_test.dir/union_bounds_test.cc.o.d"
  "union_bounds_test"
  "union_bounds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/union_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
