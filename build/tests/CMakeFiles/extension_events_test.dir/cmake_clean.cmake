file(REMOVE_RECURSE
  "CMakeFiles/extension_events_test.dir/extension_events_test.cc.o"
  "CMakeFiles/extension_events_test.dir/extension_events_test.cc.o.d"
  "extension_events_test"
  "extension_events_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_events_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
