# Empty dependencies file for frequent_probability_test.
# This may be replaced when dependencies are built.
