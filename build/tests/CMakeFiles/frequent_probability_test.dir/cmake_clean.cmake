file(REMOVE_RECURSE
  "CMakeFiles/frequent_probability_test.dir/frequent_probability_test.cc.o"
  "CMakeFiles/frequent_probability_test.dir/frequent_probability_test.cc.o.d"
  "frequent_probability_test"
  "frequent_probability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frequent_probability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
