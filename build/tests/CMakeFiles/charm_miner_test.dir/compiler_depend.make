# Empty compiler generated dependencies file for charm_miner_test.
# This may be replaced when dependencies are built.
