file(REMOVE_RECURSE
  "CMakeFiles/charm_miner_test.dir/charm_miner_test.cc.o"
  "CMakeFiles/charm_miner_test.dir/charm_miner_test.cc.o.d"
  "charm_miner_test"
  "charm_miner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charm_miner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
