file(REMOVE_RECURSE
  "CMakeFiles/distribution_consistency_test.dir/distribution_consistency_test.cc.o"
  "CMakeFiles/distribution_consistency_test.dir/distribution_consistency_test.cc.o.d"
  "distribution_consistency_test"
  "distribution_consistency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distribution_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
