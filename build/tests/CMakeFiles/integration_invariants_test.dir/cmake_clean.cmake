file(REMOVE_RECURSE
  "CMakeFiles/integration_invariants_test.dir/integration_invariants_test.cc.o"
  "CMakeFiles/integration_invariants_test.dir/integration_invariants_test.cc.o.d"
  "integration_invariants_test"
  "integration_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
