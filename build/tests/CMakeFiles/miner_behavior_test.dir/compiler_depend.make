# Empty compiler generated dependencies file for miner_behavior_test.
# This may be replaced when dependencies are built.
