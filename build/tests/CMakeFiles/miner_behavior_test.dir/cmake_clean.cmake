file(REMOVE_RECURSE
  "CMakeFiles/miner_behavior_test.dir/miner_behavior_test.cc.o"
  "CMakeFiles/miner_behavior_test.dir/miner_behavior_test.cc.o.d"
  "miner_behavior_test"
  "miner_behavior_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/miner_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
