# Empty dependencies file for uncertain_data_test.
# This may be replaced when dependencies are built.
