file(REMOVE_RECURSE
  "CMakeFiles/uncertain_data_test.dir/uncertain_data_test.cc.o"
  "CMakeFiles/uncertain_data_test.dir/uncertain_data_test.cc.o.d"
  "uncertain_data_test"
  "uncertain_data_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uncertain_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
