file(REMOVE_RECURSE
  "CMakeFiles/mining_result_test.dir/mining_result_test.cc.o"
  "CMakeFiles/mining_result_test.dir/mining_result_test.cc.o.d"
  "mining_result_test"
  "mining_result_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mining_result_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
