file(REMOVE_RECURSE
  "CMakeFiles/exact_mining_test.dir/exact_mining_test.cc.o"
  "CMakeFiles/exact_mining_test.dir/exact_mining_test.cc.o.d"
  "exact_mining_test"
  "exact_mining_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_mining_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
