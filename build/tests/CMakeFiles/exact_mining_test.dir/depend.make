# Empty dependencies file for exact_mining_test.
# This may be replaced when dependencies are built.
