file(REMOVE_RECURSE
  "CMakeFiles/item_uncertain_test.dir/item_uncertain_test.cc.o"
  "CMakeFiles/item_uncertain_test.dir/item_uncertain_test.cc.o.d"
  "item_uncertain_test"
  "item_uncertain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/item_uncertain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
