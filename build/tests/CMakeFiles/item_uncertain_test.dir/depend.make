# Empty dependencies file for item_uncertain_test.
# This may be replaced when dependencies are built.
