# Empty dependencies file for conditional_sampler_test.
# This may be replaced when dependencies are built.
