file(REMOVE_RECURSE
  "CMakeFiles/conditional_sampler_test.dir/conditional_sampler_test.cc.o"
  "CMakeFiles/conditional_sampler_test.dir/conditional_sampler_test.cc.o.d"
  "conditional_sampler_test"
  "conditional_sampler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conditional_sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
