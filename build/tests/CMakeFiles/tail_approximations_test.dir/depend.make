# Empty dependencies file for tail_approximations_test.
# This may be replaced when dependencies are built.
