file(REMOVE_RECURSE
  "CMakeFiles/tail_approximations_test.dir/tail_approximations_test.cc.o"
  "CMakeFiles/tail_approximations_test.dir/tail_approximations_test.cc.o.d"
  "tail_approximations_test"
  "tail_approximations_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tail_approximations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
