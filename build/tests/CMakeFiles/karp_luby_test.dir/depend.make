# Empty dependencies file for karp_luby_test.
# This may be replaced when dependencies are built.
