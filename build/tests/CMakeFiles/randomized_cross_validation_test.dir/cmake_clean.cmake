file(REMOVE_RECURSE
  "CMakeFiles/randomized_cross_validation_test.dir/randomized_cross_validation_test.cc.o"
  "CMakeFiles/randomized_cross_validation_test.dir/randomized_cross_validation_test.cc.o.d"
  "randomized_cross_validation_test"
  "randomized_cross_validation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randomized_cross_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
