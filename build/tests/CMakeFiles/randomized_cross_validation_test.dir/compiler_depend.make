# Empty compiler generated dependencies file for randomized_cross_validation_test.
# This may be replaced when dependencies are built.
