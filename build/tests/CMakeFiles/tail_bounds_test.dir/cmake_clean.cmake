file(REMOVE_RECURSE
  "CMakeFiles/tail_bounds_test.dir/tail_bounds_test.cc.o"
  "CMakeFiles/tail_bounds_test.dir/tail_bounds_test.cc.o.d"
  "tail_bounds_test"
  "tail_bounds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tail_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
