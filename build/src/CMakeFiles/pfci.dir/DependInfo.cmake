
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bfs_miner.cc" "src/CMakeFiles/pfci.dir/core/bfs_miner.cc.o" "gcc" "src/CMakeFiles/pfci.dir/core/bfs_miner.cc.o.d"
  "/root/repo/src/core/brute_force.cc" "src/CMakeFiles/pfci.dir/core/brute_force.cc.o" "gcc" "src/CMakeFiles/pfci.dir/core/brute_force.cc.o.d"
  "/root/repo/src/core/closed_probability.cc" "src/CMakeFiles/pfci.dir/core/closed_probability.cc.o" "gcc" "src/CMakeFiles/pfci.dir/core/closed_probability.cc.o.d"
  "/root/repo/src/core/expected_support_miner.cc" "src/CMakeFiles/pfci.dir/core/expected_support_miner.cc.o" "gcc" "src/CMakeFiles/pfci.dir/core/expected_support_miner.cc.o.d"
  "/root/repo/src/core/extension_events.cc" "src/CMakeFiles/pfci.dir/core/extension_events.cc.o" "gcc" "src/CMakeFiles/pfci.dir/core/extension_events.cc.o.d"
  "/root/repo/src/core/fcp_bounds.cc" "src/CMakeFiles/pfci.dir/core/fcp_bounds.cc.o" "gcc" "src/CMakeFiles/pfci.dir/core/fcp_bounds.cc.o.d"
  "/root/repo/src/core/fcp_engine.cc" "src/CMakeFiles/pfci.dir/core/fcp_engine.cc.o" "gcc" "src/CMakeFiles/pfci.dir/core/fcp_engine.cc.o.d"
  "/root/repo/src/core/fcp_exact.cc" "src/CMakeFiles/pfci.dir/core/fcp_exact.cc.o" "gcc" "src/CMakeFiles/pfci.dir/core/fcp_exact.cc.o.d"
  "/root/repo/src/core/fcp_sampler.cc" "src/CMakeFiles/pfci.dir/core/fcp_sampler.cc.o" "gcc" "src/CMakeFiles/pfci.dir/core/fcp_sampler.cc.o.d"
  "/root/repo/src/core/frequent_probability.cc" "src/CMakeFiles/pfci.dir/core/frequent_probability.cc.o" "gcc" "src/CMakeFiles/pfci.dir/core/frequent_probability.cc.o.d"
  "/root/repo/src/core/item_uncertain_miners.cc" "src/CMakeFiles/pfci.dir/core/item_uncertain_miners.cc.o" "gcc" "src/CMakeFiles/pfci.dir/core/item_uncertain_miners.cc.o.d"
  "/root/repo/src/core/mdnf_reduction.cc" "src/CMakeFiles/pfci.dir/core/mdnf_reduction.cc.o" "gcc" "src/CMakeFiles/pfci.dir/core/mdnf_reduction.cc.o.d"
  "/root/repo/src/core/mining_result.cc" "src/CMakeFiles/pfci.dir/core/mining_result.cc.o" "gcc" "src/CMakeFiles/pfci.dir/core/mining_result.cc.o.d"
  "/root/repo/src/core/mpfci_miner.cc" "src/CMakeFiles/pfci.dir/core/mpfci_miner.cc.o" "gcc" "src/CMakeFiles/pfci.dir/core/mpfci_miner.cc.o.d"
  "/root/repo/src/core/naive_miner.cc" "src/CMakeFiles/pfci.dir/core/naive_miner.cc.o" "gcc" "src/CMakeFiles/pfci.dir/core/naive_miner.cc.o.d"
  "/root/repo/src/core/pfi_miner.cc" "src/CMakeFiles/pfci.dir/core/pfi_miner.cc.o" "gcc" "src/CMakeFiles/pfci.dir/core/pfi_miner.cc.o.d"
  "/root/repo/src/core/probabilistic_support.cc" "src/CMakeFiles/pfci.dir/core/probabilistic_support.cc.o" "gcc" "src/CMakeFiles/pfci.dir/core/probabilistic_support.cc.o.d"
  "/root/repo/src/core/stream_miner.cc" "src/CMakeFiles/pfci.dir/core/stream_miner.cc.o" "gcc" "src/CMakeFiles/pfci.dir/core/stream_miner.cc.o.d"
  "/root/repo/src/core/topk_miner.cc" "src/CMakeFiles/pfci.dir/core/topk_miner.cc.o" "gcc" "src/CMakeFiles/pfci.dir/core/topk_miner.cc.o.d"
  "/root/repo/src/data/database_io.cc" "src/CMakeFiles/pfci.dir/data/database_io.cc.o" "gcc" "src/CMakeFiles/pfci.dir/data/database_io.cc.o.d"
  "/root/repo/src/data/database_stats.cc" "src/CMakeFiles/pfci.dir/data/database_stats.cc.o" "gcc" "src/CMakeFiles/pfci.dir/data/database_stats.cc.o.d"
  "/root/repo/src/data/item_uncertain_database.cc" "src/CMakeFiles/pfci.dir/data/item_uncertain_database.cc.o" "gcc" "src/CMakeFiles/pfci.dir/data/item_uncertain_database.cc.o.d"
  "/root/repo/src/data/itemset.cc" "src/CMakeFiles/pfci.dir/data/itemset.cc.o" "gcc" "src/CMakeFiles/pfci.dir/data/itemset.cc.o.d"
  "/root/repo/src/data/possible_world.cc" "src/CMakeFiles/pfci.dir/data/possible_world.cc.o" "gcc" "src/CMakeFiles/pfci.dir/data/possible_world.cc.o.d"
  "/root/repo/src/data/tidlist.cc" "src/CMakeFiles/pfci.dir/data/tidlist.cc.o" "gcc" "src/CMakeFiles/pfci.dir/data/tidlist.cc.o.d"
  "/root/repo/src/data/uncertain_database.cc" "src/CMakeFiles/pfci.dir/data/uncertain_database.cc.o" "gcc" "src/CMakeFiles/pfci.dir/data/uncertain_database.cc.o.d"
  "/root/repo/src/data/vertical_index.cc" "src/CMakeFiles/pfci.dir/data/vertical_index.cc.o" "gcc" "src/CMakeFiles/pfci.dir/data/vertical_index.cc.o.d"
  "/root/repo/src/data/world_enumerator.cc" "src/CMakeFiles/pfci.dir/data/world_enumerator.cc.o" "gcc" "src/CMakeFiles/pfci.dir/data/world_enumerator.cc.o.d"
  "/root/repo/src/datagen/mushroom_generator.cc" "src/CMakeFiles/pfci.dir/datagen/mushroom_generator.cc.o" "gcc" "src/CMakeFiles/pfci.dir/datagen/mushroom_generator.cc.o.d"
  "/root/repo/src/datagen/probability_assigner.cc" "src/CMakeFiles/pfci.dir/datagen/probability_assigner.cc.o" "gcc" "src/CMakeFiles/pfci.dir/datagen/probability_assigner.cc.o.d"
  "/root/repo/src/datagen/quest_generator.cc" "src/CMakeFiles/pfci.dir/datagen/quest_generator.cc.o" "gcc" "src/CMakeFiles/pfci.dir/datagen/quest_generator.cc.o.d"
  "/root/repo/src/exact/apriori.cc" "src/CMakeFiles/pfci.dir/exact/apriori.cc.o" "gcc" "src/CMakeFiles/pfci.dir/exact/apriori.cc.o.d"
  "/root/repo/src/exact/charm_miner.cc" "src/CMakeFiles/pfci.dir/exact/charm_miner.cc.o" "gcc" "src/CMakeFiles/pfci.dir/exact/charm_miner.cc.o.d"
  "/root/repo/src/exact/closed_miner.cc" "src/CMakeFiles/pfci.dir/exact/closed_miner.cc.o" "gcc" "src/CMakeFiles/pfci.dir/exact/closed_miner.cc.o.d"
  "/root/repo/src/exact/fp_growth.cc" "src/CMakeFiles/pfci.dir/exact/fp_growth.cc.o" "gcc" "src/CMakeFiles/pfci.dir/exact/fp_growth.cc.o.d"
  "/root/repo/src/exact/fp_tree.cc" "src/CMakeFiles/pfci.dir/exact/fp_tree.cc.o" "gcc" "src/CMakeFiles/pfci.dir/exact/fp_tree.cc.o.d"
  "/root/repo/src/exact/transaction_database.cc" "src/CMakeFiles/pfci.dir/exact/transaction_database.cc.o" "gcc" "src/CMakeFiles/pfci.dir/exact/transaction_database.cc.o.d"
  "/root/repo/src/harness/dataset_factory.cc" "src/CMakeFiles/pfci.dir/harness/dataset_factory.cc.o" "gcc" "src/CMakeFiles/pfci.dir/harness/dataset_factory.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/CMakeFiles/pfci.dir/harness/experiment.cc.o" "gcc" "src/CMakeFiles/pfci.dir/harness/experiment.cc.o.d"
  "/root/repo/src/harness/table_printer.cc" "src/CMakeFiles/pfci.dir/harness/table_printer.cc.o" "gcc" "src/CMakeFiles/pfci.dir/harness/table_printer.cc.o.d"
  "/root/repo/src/harness/variants.cc" "src/CMakeFiles/pfci.dir/harness/variants.cc.o" "gcc" "src/CMakeFiles/pfci.dir/harness/variants.cc.o.d"
  "/root/repo/src/prob/conditional_sampler.cc" "src/CMakeFiles/pfci.dir/prob/conditional_sampler.cc.o" "gcc" "src/CMakeFiles/pfci.dir/prob/conditional_sampler.cc.o.d"
  "/root/repo/src/prob/inclusion_exclusion.cc" "src/CMakeFiles/pfci.dir/prob/inclusion_exclusion.cc.o" "gcc" "src/CMakeFiles/pfci.dir/prob/inclusion_exclusion.cc.o.d"
  "/root/repo/src/prob/karp_luby.cc" "src/CMakeFiles/pfci.dir/prob/karp_luby.cc.o" "gcc" "src/CMakeFiles/pfci.dir/prob/karp_luby.cc.o.d"
  "/root/repo/src/prob/poisson_binomial.cc" "src/CMakeFiles/pfci.dir/prob/poisson_binomial.cc.o" "gcc" "src/CMakeFiles/pfci.dir/prob/poisson_binomial.cc.o.d"
  "/root/repo/src/prob/tail_approximations.cc" "src/CMakeFiles/pfci.dir/prob/tail_approximations.cc.o" "gcc" "src/CMakeFiles/pfci.dir/prob/tail_approximations.cc.o.d"
  "/root/repo/src/prob/tail_bounds.cc" "src/CMakeFiles/pfci.dir/prob/tail_bounds.cc.o" "gcc" "src/CMakeFiles/pfci.dir/prob/tail_bounds.cc.o.d"
  "/root/repo/src/prob/union_bounds.cc" "src/CMakeFiles/pfci.dir/prob/union_bounds.cc.o" "gcc" "src/CMakeFiles/pfci.dir/prob/union_bounds.cc.o.d"
  "/root/repo/src/util/csv_writer.cc" "src/CMakeFiles/pfci.dir/util/csv_writer.cc.o" "gcc" "src/CMakeFiles/pfci.dir/util/csv_writer.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/pfci.dir/util/random.cc.o" "gcc" "src/CMakeFiles/pfci.dir/util/random.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/pfci.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/pfci.dir/util/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
