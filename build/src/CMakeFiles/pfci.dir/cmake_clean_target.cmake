file(REMOVE_RECURSE
  "libpfci.a"
)
