# Empty compiler generated dependencies file for pfci.
# This may be replaced when dependencies are built.
